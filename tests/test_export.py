"""Unit tests for the CSV/JSON exporters."""

import csv
import dataclasses
import io
import json

import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.export import (
    SUMMARY_FIELDS,
    figure_to_csv,
    load_summaries_json,
    summaries_to_csv,
    summaries_to_json,
    summary_to_dict,
)
from repro.metrics.summary import RunSummary, summarize_run
from repro.scheduling import GLoadSharing

from helpers import drive, job, tiny_cluster


@pytest.fixture
def summary():
    cluster = tiny_cluster()
    policy = GLoadSharing(cluster)
    jobs = [job(work=10.0, home=i % 4) for i in range(4)]
    collector = MetricsCollector(cluster)
    drive(policy, jobs)
    cluster.sim.run()
    return summarize_run(policy, jobs, collector, "export-trace")


class TestSummaryFieldsSync:
    #: Fields carried outside the flat column list: ``extra`` is
    #: JSON-encoded into its own column, ``slowdowns`` is opt-in, and
    #: ``reservation_placements`` is derived from ``extra``.
    NON_COLUMN_FIELDS = {"extra", "slowdowns", "reservation_placements"}

    def test_summary_fields_match_dataclass(self):
        """A field added to RunSummary must be wired into
        SUMMARY_FIELDS (or explicitly listed above) or exports would
        silently drop it."""
        declared = {field.name for field in dataclasses.fields(RunSummary)}
        assert declared - self.NON_COLUMN_FIELDS == set(SUMMARY_FIELDS)

    def test_summary_fields_round_trip(self, summary):
        data = summary_to_dict(summary)
        for name in SUMMARY_FIELDS:
            assert data[name] == getattr(summary, name)


class TestSummaryExport:
    def test_dict_round_trip(self, summary):
        data = summary_to_dict(summary)
        assert data["trace"] == "export-trace"
        assert data["num_jobs"] == 4
        json.dumps(data)  # JSON-able

    def test_dict_with_slowdowns(self, summary):
        data = summary_to_dict(summary, include_slowdowns=True)
        assert len(data["slowdowns"]) == 4

    def test_json_export_and_load(self, summary, tmp_path):
        path = str(tmp_path / "out.json")
        summaries_to_json([summary, summary], target=path)
        loaded = load_summaries_json(path)
        assert len(loaded) == 2
        assert loaded[0]["policy"] == "G-Loadsharing"

    def test_json_to_stream(self, summary):
        buffer = io.StringIO()
        text = summaries_to_json([summary], target=buffer)
        assert buffer.getvalue() == text
        assert json.loads(text)[0]["num_jobs"] == 4

    def test_csv_export(self, summary, tmp_path):
        path = str(tmp_path / "out.csv")
        summaries_to_csv([summary], target=path)
        with open(path) as stream:
            rows = list(csv.DictReader(stream))
        assert len(rows) == 1
        assert rows[0]["trace"] == "export-trace"
        assert float(rows[0]["average_slowdown"]) >= 1.0
        assert json.loads(rows[0]["extra"]) == summary.extra


class TestFigureExport:
    def test_figure_csv(self):
        from repro.experiments.figures import figure3
        figure = figure3(scale=0.06, trace_indices=[1])
        text = figure_to_csv(figure)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows
        assert rows[0]["figure"] == "Figure 3"
        panels = {row["panel"] for row in rows}
        assert len(panels) == 2
