"""Unit tests for the workstation model."""

import math

import pytest

from repro.cluster.config import ClusterConfig, WorkstationSpec
from repro.cluster.job import Job, JobState, MemoryProfile
from repro.cluster.memory import PagingModel
from repro.cluster.workstation import Workstation
from repro.sim import Simulator


def make_node(sim, memory_mb=384.0, on_finish=None, **config_kwargs):
    config = ClusterConfig(
        num_nodes=1,
        spec=WorkstationSpec(memory_mb=memory_mb, swap_mb=memory_mb),
        kernel_reserved_mb=0.0,
        **config_kwargs,
    )
    paging = PagingModel(alpha=config.residency_alpha,
                         max_fault_rate_per_cpu_s=config.max_fault_rate_per_cpu_s,
                         fault_service_s=config.fault_service_s)
    return Workstation(sim, 0, config.spec, config, paging,
                       on_job_finished=on_finish)


def make_job(work=100.0, demand=50.0, **kwargs):
    return Job(program="test", cpu_work_s=work,
               memory=MemoryProfile.constant(demand), **kwargs)


class TestSingleJob:
    def test_lone_job_finishes_after_its_work(self):
        sim = Simulator()
        finished = []
        node = make_node(sim, on_finish=lambda j, n: finished.append(j))
        job = make_job(work=100.0, demand=50.0)
        node.add_job(job)
        sim.run()
        assert finished == [job]
        assert job.state is JobState.FINISHED
        assert sim.now == pytest.approx(100.0)
        assert job.finish_time == pytest.approx(100.0)

    def test_lone_job_accounting_is_pure_cpu(self):
        sim = Simulator()
        node = make_node(sim)
        job = make_job(work=100.0, demand=50.0)
        node.add_job(job)
        sim.run()
        assert job.acct.cpu_s == pytest.approx(100.0)
        assert job.acct.page_s == pytest.approx(0.0)
        assert job.acct.queue_s == pytest.approx(0.0, abs=1e-6)

    def test_oversized_lone_job_thrashes(self):
        sim = Simulator()
        node = make_node(sim, memory_mb=100.0)
        job = make_job(work=100.0, demand=200.0)
        node.add_job(job)
        assert node.thrashing
        assert job.faulting
        sim.run()
        # Half the pages missing at K=400 -> 200 faults/cpu-s at 10 ms
        # each is >= 2 s of stall per cpu second (3x elongation), made
        # worse by paging-disk contention and fault CPU overhead.
        assert sim.now >= 300.0 - 1e-6
        assert job.acct.page_s >= 200.0 - 1e-6
        # decomposition still holds exactly
        total = (job.acct.cpu_s + job.acct.page_s + job.acct.io_s
                 + job.acct.queue_s)
        assert total == pytest.approx(sim.now, rel=1e-6)


class TestSharing:
    def test_two_equal_jobs_share_cpu(self):
        sim = Simulator()
        node = make_node(sim)
        a, b = make_job(work=100.0), make_job(work=100.0)
        node.add_job(a)
        node.add_job(b)
        sim.run()
        tax = node.config.context_switch_tax
        expected = 200.0 / (1.0 - tax)
        assert sim.now == pytest.approx(expected, rel=1e-6)
        # Each spent ~half its wall time queuing behind the other.
        assert a.acct.queue_s == pytest.approx(expected - a.acct.cpu_s,
                                               rel=1e-4)

    def test_short_job_departs_then_long_job_speeds_up(self):
        sim = Simulator()
        finished = []
        node = make_node(sim, on_finish=lambda j, n: finished.append(j.job_id))
        short, long_ = make_job(work=10.0), make_job(work=100.0)
        node.add_job(short)
        node.add_job(long_)
        sim.run()
        assert finished[0] == short.job_id
        tax = node.config.context_switch_tax
        # short finishes near t=20 (shared), long does remaining 90 alone
        t_short = 20.0 / (1.0 - tax)
        assert short.finish_time == pytest.approx(t_short, rel=1e-6)
        assert long_.finish_time == pytest.approx(t_short + 90.0, rel=1e-4)

    def test_wall_time_decomposition_sums(self):
        sim = Simulator()
        node = make_node(sim, memory_mb=100.0)
        jobs = [make_job(work=50.0, demand=60.0) for _ in range(3)]
        start = sim.now
        for job in jobs:
            node.add_job(job)
        sim.run()
        for job in jobs:
            wall = job.finish_time - start
            acct_sum = (job.acct.cpu_s + job.acct.page_s + job.acct.io_s
                        + job.acct.queue_s + job.acct.migration_s)
            assert acct_sum == pytest.approx(wall, rel=1e-6)


class TestMemoryPhases:
    def test_demand_follows_phases(self):
        sim = Simulator()
        node = make_node(sim)
        profile = MemoryProfile.from_pairs([(0.0, 10.0), (50.0, 300.0)])
        job = Job(program="phased", cpu_work_s=100.0, memory=profile)
        node.add_job(job)
        sim.run(until=25.0)
        assert node.total_demand_mb == pytest.approx(10.0)
        sim.run(until=75.0)
        assert node.total_demand_mb == pytest.approx(300.0)
        sim.run()
        assert job.finished

    def test_phase_growth_triggers_thrashing(self):
        sim = Simulator()
        node = make_node(sim, memory_mb=100.0)
        profile = MemoryProfile.from_pairs([(0.0, 10.0), (10.0, 200.0)])
        job = Job(program="grower", cpu_work_s=20.0, memory=profile)
        node.add_job(job)
        sim.run(until=5.0)
        assert not node.thrashing
        sim.run(until=10.0 + 1e-3)
        assert node.thrashing
        sim.run()
        assert job.finished


class TestMigrationSupport:
    def test_remove_job_detaches(self):
        sim = Simulator()
        node = make_node(sim)
        job = make_job(work=100.0)
        node.add_job(job)
        sim.run(until=30.0)
        node.remove_job(job)
        assert node.num_running == 0
        assert job.node_id is None
        assert job.progress_s == pytest.approx(30.0)

    def test_removed_job_keeps_progress_on_new_node(self):
        sim = Simulator()
        node_a = make_node(sim)
        node_b = make_node(sim)
        job = make_job(work=100.0)
        node_a.add_job(job)
        sim.run(until=40.0)
        node_a.remove_job(job)
        node_b.add_job(job)
        sim.run()
        assert job.finished
        assert job.finish_time == pytest.approx(100.0)

    def test_remove_unknown_job_raises(self):
        sim = Simulator()
        node = make_node(sim)
        with pytest.raises(ValueError):
            node.remove_job(make_job())

    def test_add_finished_job_raises(self):
        sim = Simulator()
        node = make_node(sim)
        job = make_job()
        job.state = JobState.FINISHED
        with pytest.raises(ValueError):
            node.add_job(job)

    def test_double_add_raises(self):
        sim = Simulator()
        node = make_node(sim)
        job = make_job()
        node.add_job(job)
        with pytest.raises(ValueError):
            node.add_job(job)


class TestAdmission:
    def test_accepting_requires_slot_and_memory(self):
        sim = Simulator()
        node = make_node(sim, memory_mb=100.0, cpu_threshold=2)
        assert node.accepting
        node.add_job(make_job(work=10.0, demand=40.0))
        assert node.accepting
        node.add_job(make_job(work=10.0, demand=40.0))
        assert not node.accepting  # CPU threshold reached

    def test_accepting_requires_idle_memory(self):
        sim = Simulator()
        node = make_node(sim, memory_mb=100.0)
        node.add_job(make_job(work=10.0, demand=100.0))
        assert node.idle_memory_mb == pytest.approx(0.0)
        assert not node.accepting

    def test_reserved_node_not_accepting(self):
        sim = Simulator()
        node = make_node(sim)
        node.reserved = True
        assert not node.accepting
        assert not node.accepts_migration(make_job(demand=1.0))

    def test_accepts_migration_checks_current_demand(self):
        sim = Simulator()
        node = make_node(sim, memory_mb=100.0)
        node.add_job(make_job(work=10.0, demand=60.0))
        small = make_job(demand=30.0)
        big = make_job(demand=60.0)
        assert node.accepts_migration(small)
        assert not node.accepts_migration(big)

    def test_admits_demand_memory_threshold(self):
        sim = Simulator()
        node = make_node(sim, memory_mb=100.0, memory_threshold_factor=1.5)
        assert node.admits_demand(150.0)
        assert not node.admits_demand(151.0)

    def test_most_memory_intensive_job(self):
        sim = Simulator()
        node = make_node(sim, memory_mb=100.0)
        small = make_job(work=10.0, demand=20.0)
        big = make_job(work=10.0, demand=70.0)
        node.add_job(small)
        node.add_job(big)
        assert node.most_memory_intensive_job() is big

    def test_most_memory_intensive_faulting_only(self):
        sim = Simulator()
        node = make_node(sim, memory_mb=500.0)
        node.add_job(make_job(work=10.0, demand=20.0))
        # memory fits -> nobody faults
        assert node.most_memory_intensive_job(faulting_only=True) is None
        assert node.most_memory_intensive_job() is not None
