"""Health-rule engine: grammar, raise/clear incident tracking, alert
bus emission, verdicts, and end-to-end alerts on a real run."""

import pytest

from repro.experiments.scenario import run_blocking_scenario
from repro.obs.bus import EventBus
from repro.obs.health import (
    DEFAULT_RULES,
    HealthEngine,
    HealthRule,
    parse_rule,
)
from repro.obs.session import ObsSession


def snap(t=0.0, **metrics):
    """Minimal closed-window snapshot carrying top-level metrics."""
    base = {"t": t, "rates": {}, "counts": {}, "totals": {},
            "quantiles": {}, "staleness": {}}
    base.update(metrics)
    return base


class TestRuleGrammar:
    def test_threshold_rule(self):
        rule = parse_rule("blocking.rate > 0.5 for 3 windows")
        assert rule == HealthRule(source="blocking.rate > 0.5 for 3 windows",
                                  metric="blocking.rate", severity="warning",
                                  op=">", threshold=0.5, windows=3)

    def test_severity_prefix(self):
        rule = parse_rule("critical: sim_lag >= 2.0")
        assert rule.severity == "critical"
        assert rule.op == ">="
        assert rule.windows == 1

    def test_absent_form(self):
        rule = parse_rule("info: absent(finish.rate) for 5 windows")
        assert rule.absent
        assert rule.metric == "finish.rate"
        assert rule.severity == "info"
        assert rule.windows == 5

    def test_singular_window_keyword(self):
        assert parse_rule("requeue.rate > 1 for 1 window").windows == 1

    def test_scientific_threshold(self):
        assert parse_rule("slowdown.p95 > 1.5e1").threshold == 15.0

    @pytest.mark.parametrize("text", [
        "", "blocking.rate", "blocking.rate == 1",
        "loud: sim_lag > 1", "absent()", "sim_lag > abc",
        "sim_lag > 1 for x windows",
    ])
    def test_unparseable(self, text):
        with pytest.raises(ValueError, match="unparseable"):
            parse_rule(text)

    def test_zero_windows_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            parse_rule("sim_lag > 1 for 0 windows")

    def test_holds(self):
        rule = parse_rule("sim_lag > 1.0")
        assert rule.holds(snap(sim_lag_s=2.0))
        assert not rule.holds(snap(sim_lag_s=0.5))
        assert not rule.holds(snap())  # missing metric never holds

    def test_absent_holds_on_missing_or_zero(self):
        rule = parse_rule("absent(finish.rate)")
        assert rule.holds(snap())
        assert rule.holds(snap(rates={"finish": 0.0}))
        assert not rule.holds(snap(rates={"finish": 0.2}))


class TestHealthEngine:
    def test_raise_after_consecutive_windows(self):
        engine = HealthEngine(["sim_lag > 1.0 for 2 windows"])
        engine.evaluate(snap(t=10.0, sim_lag_s=3.0))
        assert engine.status() == "ok"  # one window is not enough
        engine.evaluate(snap(t=20.0, sim_lag_s=4.0))
        assert engine.status() == "degraded"
        [incident] = engine.active_incidents()
        assert incident.raised_at == 20.0
        assert incident.peak_value == 4.0

    def test_non_consecutive_windows_reset(self):
        engine = HealthEngine(["sim_lag > 1.0 for 2 windows"])
        engine.evaluate(snap(t=10.0, sim_lag_s=3.0))
        engine.evaluate(snap(t=20.0, sim_lag_s=0.0))
        engine.evaluate(snap(t=30.0, sim_lag_s=3.0))
        assert engine.status() == "ok"
        assert engine.incidents == []

    def test_clear_and_peak_tracking(self):
        engine = HealthEngine(["sim_lag > 1.0"])
        engine.evaluate(snap(t=10.0, sim_lag_s=2.0))
        engine.evaluate(snap(t=20.0, sim_lag_s=9.0))
        engine.evaluate(snap(t=30.0, sim_lag_s=0.1))
        assert engine.status() == "ok"
        [incident] = engine.incidents
        assert incident.raised_at == 10.0
        assert incident.cleared_at == 30.0
        assert incident.peak_value == 9.0
        assert incident.duration(end_time=99.0) == 20.0

    def test_critical_dominates_status(self):
        engine = HealthEngine(["critical: sim_lag > 5.0",
                               "sim_lag > 1.0",
                               "info: absent(finish.rate)"])
        engine.evaluate(snap(t=10.0, sim_lag_s=6.0))
        assert engine.status() == "critical"

    def test_info_alerts_keep_status_ok(self):
        engine = HealthEngine(["info: absent(finish.rate)"])
        engine.evaluate(snap(t=10.0))
        assert engine.status() == "ok"
        assert len(engine.active_incidents()) == 1

    def test_alert_events_flow_through_bus(self):
        bus = EventBus()
        seen = []
        bus.subscribe("obs.alert", seen.append)
        engine = HealthEngine(["sim_lag > 1.0"],
                              channel=bus.channel("obs.alert"))
        engine.evaluate(snap(t=10.0, sim_lag_s=2.0))
        engine.evaluate(snap(t=20.0, sim_lag_s=0.0))
        assert [event.kind for event in seen] == ["raise", "clear"]
        assert seen[0].data["rule"] == "sim_lag > 1.0"
        assert seen[0].data["severity"] == "warning"

    def test_verdict_payload(self):
        engine = HealthEngine(["sim_lag > 1.0"])
        engine.evaluate(snap(t=10.0, sim_lag_s=2.0))
        verdict = engine.verdict()
        assert verdict["status"] == "degraded"
        assert verdict["t"] == 10.0
        assert verdict["windows_evaluated"] == 1
        assert verdict["rules"] == ["sim_lag > 1.0"]
        assert verdict["active"][0]["rule"] == "sim_lag > 1.0"
        assert verdict["incidents"] == 1

    def test_aggregate(self):
        engine = HealthEngine(["sim_lag > 1.0",
                               "critical: sim_lag > 5.0"])
        engine.evaluate(snap(t=10.0, sim_lag_s=6.0))
        engine.evaluate(snap(t=20.0, sim_lag_s=0.0))
        agg = engine.aggregate(end_time=20.0)
        assert agg["health_rules"] == 2.0
        assert agg["health_windows_evaluated"] == 2.0
        assert agg["health_alerts_total"] == 2.0
        assert agg["health_alerts_warning"] == 1.0
        assert agg["health_alerts_critical"] == 1.0
        assert agg["health_alerts_info"] == 0.0
        assert agg["health_alert_s_total"] == 20.0
        assert agg["health_active_alerts"] == 0.0

    def test_default_rules_parse(self):
        engine = HealthEngine(DEFAULT_RULES)
        assert len(engine.rules) == 2


class TestHealthOnRealRun:
    def test_tripwire_rule_raises_and_reaches_summary(self):
        # A threshold of -1 on a rate that is always >= 0 trips on the
        # first closed window and never clears.
        obs = ObsSession(record_events=True, window_s=100.0,
                         health_rules=["info: finish.rate >= -1"],
                         run_label="health-test")
        result = run_blocking_scenario("v-reconfiguration", obs=obs)
        assert obs.health is not None
        assert obs.health.windows_evaluated >= 1
        assert len(obs.health.incidents) == 1
        extra = result.summary.extra
        assert extra["obs.health_alerts_total"] == 1.0
        assert extra["obs.health_alerts_info"] == 1.0
        assert extra["obs.alerts_raised_info"] == 1.0
        alerts = [event for event in obs.events
                  if event.channel == "obs.alert"]
        assert len(alerts) == 1
        assert alerts[0].kind == "raise"
