"""Windowed streaming aggregation: P² sketches, rolling rates, and
agreement between the live snapshot stream and the end-of-run summary.
"""

import random

import pytest

from repro.experiments.scenario import run_blocking_scenario
from repro.obs.session import ObsSession
from repro.obs.window import (
    DEFAULT_WINDOW_S,
    P2Quantile,
    RollingCounter,
    WindowAggregator,
    WindowedGauge,
    resolve_metric,
)

from helpers import job, tiny_cluster


class TestP2Quantile:
    @pytest.mark.parametrize("p", [0.5, 0.9, 0.95])
    def test_uniform_accuracy(self, p):
        rng = random.Random(17)
        sketch = P2Quantile(p)
        values = [rng.random() for _ in range(4000)]
        for value in values:
            sketch.observe(value)
        values.sort()
        exact = values[int(p * len(values))]
        # P² is approximate; a few percent of the range is plenty for
        # dashboard quantiles.
        assert sketch.value() == pytest.approx(exact, abs=0.03)

    def test_bimodal_accuracy(self):
        rng = random.Random(5)
        sketch = P2Quantile(0.95)
        values = []
        for _ in range(3000):
            value = (rng.gauss(1.0, 0.1) if rng.random() < 0.9
                     else rng.gauss(10.0, 1.0))
            values.append(value)
            sketch.observe(value)
        values.sort()
        exact = values[int(0.95 * len(values))]
        assert sketch.value() == pytest.approx(exact, rel=0.25)

    def test_small_counts_are_exact_order_statistics(self):
        sketch = P2Quantile(0.5)
        for value in (5.0, 1.0, 3.0):
            sketch.observe(value)
        assert sketch.value() == 3.0

    def test_empty_sketch(self):
        sketch = P2Quantile(0.95)
        assert sketch.value() is None
        assert sketch.mean() is None

    def test_mean_min_max_exact(self):
        sketch = P2Quantile(0.9)
        for value in range(1, 101):
            sketch.observe(float(value))
        assert sketch.mean() == pytest.approx(50.5)
        assert sketch.min == 1.0
        assert sketch.max == 100.0


class TestRollingInstruments:
    def test_rolling_counter(self):
        counter = RollingCounter()
        counter.inc()
        counter.inc(3.0)
        assert counter.total == 4.0
        counter.roll(10.0)
        assert counter.last_count == 4.0
        assert counter.last_rate == pytest.approx(0.4)
        assert counter.current == 0.0
        counter.roll(10.0)
        assert counter.last_rate == 0.0
        assert counter.total == 4.0  # cumulative survives rolls

    def test_windowed_gauge(self):
        gauge = WindowedGauge()
        gauge.set(2.0)
        gauge.set(5.0)
        assert gauge.window_max == 5.0
        gauge.roll()
        gauge.set(1.0)
        assert gauge.window_max == 1.0
        assert gauge.value == 1.0


class TestWindowAggregator:
    def test_snapshots_close_on_window_ticks(self):
        cluster = tiny_cluster()
        aggregator = WindowAggregator(window_s=10.0).attach(cluster)
        cluster.nodes[0].add_job(job(work=35.0, demand=10.0))
        cluster.sim.run()
        assert aggregator.windows_closed >= 3
        assert len(aggregator.history) == aggregator.windows_closed
        ts = [snap["t"] for snap in aggregator.history]
        assert ts == sorted(ts)
        assert all(snap["closed"] for snap in aggregator.history)

    def test_window_ticks_are_daemon_events(self):
        cluster = tiny_cluster()
        WindowAggregator(window_s=10.0).attach(cluster)
        cluster.sim.run()  # no jobs: must terminate immediately
        assert cluster.sim.now == 0.0

    def test_open_snapshot_on_demand(self):
        cluster = tiny_cluster()
        aggregator = WindowAggregator(window_s=1000.0).attach(cluster)
        cluster.nodes[0].add_job(job(work=20.0, demand=10.0))
        cluster.sim.run()
        snap = aggregator.snapshot(cluster.sim.now)
        assert not snap["closed"]
        assert snap["totals"]["jobs_finished"] == 1.0

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError, match="positive"):
            WindowAggregator(window_s=0.0)

    def test_observer_sees_each_closed_window(self):
        cluster = tiny_cluster()
        aggregator = WindowAggregator(window_s=10.0).attach(cluster)
        seen = []
        aggregator.add_observer(lambda snap: seen.append(snap["t"]))
        cluster.nodes[0].add_job(job(work=25.0, demand=10.0))
        cluster.sim.run()
        assert len(seen) == aggregator.windows_closed


class TestSnapshotAgreesWithSummary:
    """Acceptance: windowed aggregation agrees with the end-of-run
    RunSummary on every overlapping metric."""

    @pytest.fixture(scope="class")
    def windowed_run(self):
        obs = ObsSession(record_events=False, window_s=100.0,
                         run_label="window-test")
        result = run_blocking_scenario("v-reconfiguration", obs=obs)
        return obs, result

    def test_totals_match_summary(self, windowed_run):
        obs, result = windowed_run
        snap = obs.window.snapshot(result.cluster.sim.now)
        assert snap["totals"]["jobs_finished"] == result.summary.num_jobs
        assert snap["totals"]["migrations"] == result.summary.migrations

    def test_slowdown_mean_matches_summary(self, windowed_run):
        obs, result = windowed_run
        snap = obs.window.snapshot(result.cluster.sim.now)
        assert snap["quantiles"]["slowdown_mean"] == pytest.approx(
            result.summary.average_slowdown, rel=1e-6)

    def test_aggregate_reaches_summary_extra(self, windowed_run):
        obs, result = windowed_run
        extra = result.summary.extra
        assert extra["obs.window_width_s"] == 100.0
        assert extra["obs.window_count"] >= 1
        assert extra["obs.window_jobs_finished"] == result.summary.num_jobs

    def test_default_window_constant(self):
        assert DEFAULT_WINDOW_S == 50.0


class TestResolveMetric:
    SNAPSHOT = {
        "t": 100.0,
        "rates": {"finish": 0.5, "blocking": 0.0},
        "counts": {"finish": 25.0},
        "totals": {"jobs_finished": 50.0, "requeues": 3.0},
        "quantiles": {"slowdown_p95": 4.0, "slowdown_mean": 2.0},
        "staleness": {"loadinfo_age_s": 1.5},
        "pending_jobs": 7.0,
        "sim_lag_s": 0.25,
    }

    @pytest.mark.parametrize("name,expected", [
        ("finish.rate", 0.5),
        ("finish.count", 25.0),
        ("finish.total", 50.0),
        ("requeue.total", 3.0),
        ("slowdown.p95", 4.0),
        ("slowdown.mean", 2.0),
        ("loadinfo.age_s", 1.5),
        ("sim_lag", 0.25),
        ("pending_jobs", 7.0),
    ])
    def test_resolution(self, name, expected):
        assert resolve_metric(self.SNAPSHOT, name) == expected

    def test_unknown_metric_is_none(self):
        assert resolve_metric(self.SNAPSHOT, "nope.rate") is None
        assert resolve_metric(self.SNAPSHOT, "nonsense") is None
