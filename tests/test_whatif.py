"""The what-if replay experiment (checkpoint-branched policy race).

The experiment's claim rests on the checkpoint layer: every branch
starts from the same serialized world, so the continued branch must be
*byte-identical* to the uninterrupted baseline (the built-in
self-check), and forked branches differ only by the policy decision.
"""

import dataclasses
import json

import pytest

from repro.experiments.__main__ import main
from repro.experiments.whatif import (DEFAULT_POLICIES,
                                      run_whatif_experiment)


def canonical(summary) -> dict:
    return json.loads(json.dumps(dataclasses.asdict(summary),
                                 sort_keys=True))


@pytest.fixture(scope="module")
def report():
    return run_whatif_experiment(seed=0, branch_at=200.0,
                                 num_nodes=8)


def test_continued_branch_is_byte_identical_to_baseline(report):
    continued = [b for b in report.branches if not b.forked]
    assert len(continued) == 1
    assert canonical(continued[0].result.summary) == \
        canonical(report.baseline.summary)


def test_forked_branch_swaps_policy(report):
    forked = [b for b in report.branches if b.forked]
    assert len(forked) == 1
    assert forked[0].result.summary.policy == "V-Reconfiguration"
    assert "(continued)" not in forked[0].label
    assert report.branches[0].label.endswith("(continued)")


def test_fork_resolves_blocking_earlier_than_continuation(report):
    by_key = {b.policy_key: b.result.summary for b in report.branches}
    assert by_key["v-reconfiguration"].total_paging_time_s < \
        by_key["g-loadsharing"].total_paging_time_s


def test_render_mentions_every_branch(report):
    text = report.render()
    assert "G-Loadsharing (continued)" in text
    assert "V-Reconfiguration" in text
    assert "average slowdown" in text
    assert "t=200s" in text


def test_rows_cover_all_metrics_and_branches(report):
    rows = report.rows()
    metrics = {row["metric"] for row in rows}
    assert {"average slowdown", "makespan (s)",
            "total paging time (s)", "migrations"} <= metrics
    for row in rows:
        for branch in report.branches:
            assert branch.label in row


def test_write_report_emits_selfcontained_html(report, tmp_path):
    target = str(tmp_path / "whatif.html")
    report.write_report(target)
    with open(target) as stream:
        doc = stream.read()
    assert "<!doctype html>" in doc
    assert "V-Reconfiguration" in doc
    assert "class=best" in doc  # best-value highlighting present


def test_keeps_snapshot_when_path_given(tmp_path):
    ckpt = str(tmp_path / "branch.ckpt")
    run_whatif_experiment(seed=0, branch_at=150.0, num_nodes=8,
                          policies=("g-loadsharing",),
                          checkpoint_path=ckpt)
    from repro.sim.checkpoint import peek_meta
    meta = peek_meta(ckpt)
    assert meta["sim_now"] == 150.0
    assert meta["policy"] == "G-Loadsharing"


def test_default_policies_are_the_papers_contenders():
    assert DEFAULT_POLICIES == ("g-loadsharing", "v-reconfiguration")


class TestCli:
    def test_whatif_flags_require_whatif_target(self):
        with pytest.raises(SystemExit):
            main(["scenario", "--whatif-at", "300"])

    def test_whatif_target_runs_and_reports(self, tmp_path, capsys):
        html_path = str(tmp_path / "whatif.html")
        ckpt_path = str(tmp_path / "kept.ckpt")
        assert main(["whatif", "--whatif-at", "250",
                     "--report", html_path,
                     "--whatif-checkpoint", ckpt_path]) == 0
        out = capsys.readouterr().out
        assert "What-if replay" in out
        assert "kept snapshot" in out
        assert "HTML comparison report" in out
        with open(html_path) as stream:
            assert "What-if replay" in stream.read()
        from repro.sim.checkpoint import peek_meta
        assert peek_meta(ckpt_path)["sim_now"] == 250.0
