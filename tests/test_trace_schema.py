"""Perfetto (Chrome trace-event) JSON schema smoke test.

The trace exporter is the debugging surface for everything the fault
subsystem does, so its output must stay loadable by Perfetto: the
document needs the ``traceEvents`` / ``displayTimeUnit`` envelope,
every event needs the phase/pid/tid/name quartet, complete-spans need
non-negative durations, and timestamps must be globally sorted (the
exporter sorts; Perfetto tolerates unsorted input but our JSONL
consumers do not).
"""

import io
import json

from repro.experiments.scenario import run_blocking_scenario
from repro.faults import FaultConfig
from repro.obs.session import ObsSession
from repro.obs.trace_export import CLUSTER_PID, NETWORK_PID

VALID_PHASES = {"M", "i", "X", "C"}


def scenario_trace(faults=None):
    obs = ObsSession(record_events=True, run_label="schema-smoke")
    run_blocking_scenario("v-reconfiguration", seed=0, obs=obs,
                          faults=faults)
    target = io.StringIO()
    document = obs.write_trace(target)
    # The written payload and the returned document are the same JSON.
    assert json.loads(target.getvalue()) == json.loads(
        json.dumps(document))
    return document


def test_trace_document_envelope():
    document = scenario_trace()
    assert set(document) == {"traceEvents", "displayTimeUnit",
                             "otherData"}
    assert document["displayTimeUnit"] == "ms"
    assert document["otherData"]["run"] == "schema-smoke"
    assert document["otherData"]["events"] > 0
    assert len(document["traceEvents"]) > 0


def test_every_event_has_required_keys():
    events = scenario_trace()["traceEvents"]
    for event in events:
        assert event["ph"] in VALID_PHASES, event
        assert isinstance(event["name"], str) and event["name"], event
        assert event["pid"] in (CLUSTER_PID, NETWORK_PID), event
        assert isinstance(event["tid"], int), event
        if event["ph"] == "M":
            # Metadata events carry no timestamp, only args.name.
            assert "ts" not in event
            assert event["name"] in ("process_name", "thread_name")
            assert event["args"]["name"]
        else:
            assert isinstance(event["ts"], float) and event["ts"] >= 0.0
            assert event["cat"], event
        if event["ph"] == "X":
            assert event["dur"] >= 0.0, event
        if event["ph"] == "i":
            assert event["s"] == "t", event


def test_timestamps_sorted_and_monotonic_per_track():
    events = [e for e in scenario_trace()["traceEvents"]
              if "ts" in e]
    # Global sort (what the exporter promises)...
    stamps = [e["ts"] for e in events]
    assert stamps == sorted(stamps)
    # ...implies per-(pid, tid) track monotonicity.
    last = {}
    for event in events:
        track = (event["pid"], event["tid"])
        assert event["ts"] >= last.get(track, 0.0), event
        last[track] = event["ts"]


def test_trace_has_node_and_network_tracks():
    events = scenario_trace()["traceEvents"]
    meta_names = {(e["pid"], e["args"]["name"])
                  for e in events if e["ph"] == "M"}
    assert any(pid == NETWORK_PID for pid, _ in meta_names)
    assert any(name.startswith("node ") for _, name in meta_names)
    # The scenario migrates, so the network track carries spans.
    assert any(e["ph"] == "X" and e["pid"] == NETWORK_PID
               for e in events)


def test_faulted_run_emits_fault_instants_in_trace():
    faults = FaultConfig(mtbf_s=800.0, mttr_s=60.0,
                         crash_policy="checkpoint")
    events = scenario_trace(faults=faults)["traceEvents"]
    kinds = {e["name"] for e in events if e["ph"] == "i"}
    assert any("crash" in name for name in kinds), kinds
    assert any("recover" in name for name in kinds), kinds
