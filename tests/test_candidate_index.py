"""Property tests for the directory's incremental candidate orders.

The load-info directory maintains two sorted orders (accepting nodes
by idle memory, all nodes by job count) incrementally — bisection
updates driven by workstation change notifications.  The defining
invariant is that after *any* sequence of cluster mutations, in both
the periodic and the live (``exchange_interval_s == 0``) staleness
regimes, the maintained orders are exactly what sorting a fresh
``snapshots()`` list would produce.  Hypothesis drives random
mutation sequences; the oracle is the from-scratch sort.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster, ClusterConfig, WorkstationSpec
from repro.cluster.job import Job, MemoryProfile

NUM_NODES = 5

#: One cluster mutation: (kind, node selector, argument).
op_strategy = st.one_of(
    st.tuples(st.just("add"), st.integers(0, NUM_NODES - 1),
              st.floats(min_value=1.0, max_value=80.0)),
    st.tuples(st.just("remove"), st.integers(0, NUM_NODES - 1),
              st.integers(min_value=0, max_value=5)),
    st.tuples(st.just("reserve"), st.integers(0, NUM_NODES - 1),
              st.booleans()),
    st.tuples(st.just("inbound"), st.integers(0, NUM_NODES - 1),
              st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("advance"), st.integers(0, NUM_NODES - 1),
              st.floats(min_value=0.1, max_value=2.5)),
)

ops_strategy = st.lists(op_strategy, min_size=1, max_size=25)
interval_strategy = st.sampled_from([0.0, 1.0])


def make_cluster(interval):
    return Cluster(ClusterConfig(
        num_nodes=NUM_NODES,
        spec=WorkstationSpec(memory_mb=100.0, swap_mb=100.0),
        kernel_reserved_mb=0.0,
        load_exchange_interval_s=interval,
    ))


def apply_op(cluster, op):
    kind, which, arg = op
    node = cluster.nodes[which]
    if kind == "add":
        node.add_job(Job(program="t", cpu_work_s=50.0,
                         memory=MemoryProfile.constant(arg),
                         home_node=node.node_id))
    elif kind == "remove":
        if node.running_jobs:
            node.remove_job(node.running_jobs[arg % len(node.running_jobs)])
    elif kind == "reserve":
        node.reserved = arg
    elif kind == "inbound":
        node.inbound_jobs = arg
    elif kind == "advance":
        cluster.sim.run(until=cluster.sim.now + arg)


def expected_accepting_ids(directory):
    snaps = [s for s in directory.snapshots() if s.accepting]
    snaps.sort(key=lambda s: (-s.idle_memory_mb, s.num_jobs, s.node_id))
    return [s.node_id for s in snaps]


def expected_load_order_ids(directory):
    snaps = sorted(directory.snapshots(),
                   key=lambda s: (s.num_jobs, s.node_id))
    return [s.node_id for s in snaps]


def assert_orders_match(cluster):
    directory = cluster.directory
    assert directory.accepting_ids() == expected_accepting_ids(directory)
    assert directory.load_order_ids() == expected_load_order_ids(directory)
    snaps = directory.snapshots()
    assert directory.least_num_jobs() == min(s.num_jobs for s in snaps)


@settings(max_examples=60, deadline=None)
@given(interval=interval_strategy, ops=ops_strategy)
def test_orders_match_fresh_sort_after_every_mutation(interval, ops):
    """Continuously queried orders stay identical to the oracle sort
    (exercises the incremental-update path after every mutation)."""
    cluster = make_cluster(interval)
    assert_orders_match(cluster)  # activates the orders up front
    for op in ops:
        apply_op(cluster, op)
        assert_orders_match(cluster)


@settings(max_examples=60, deadline=None)
@given(interval=interval_strategy, ops=ops_strategy)
def test_orders_match_fresh_sort_on_late_activation(interval, ops):
    """Orders first queried *after* a mutation burst still match the
    oracle (exercises lazy activation from accumulated state)."""
    cluster = make_cluster(interval)
    for op in ops:
        apply_op(cluster, op)
    assert_orders_match(cluster)
    # ... and keep matching once active.
    for op in ops[: len(ops) // 2]:
        apply_op(cluster, op)
    assert_orders_match(cluster)


@settings(max_examples=30, deadline=None)
@given(ops=ops_strategy)
def test_order_version_only_advances(ops):
    """``order_version`` is monotonic, so schedulers can key caches
    on it without missing an order change."""
    cluster = make_cluster(0.0)
    directory = cluster.directory
    directory.accepting_ids()
    seen = directory.order_version
    for op in ops:
        apply_op(cluster, op)
        assert directory.order_version >= seen
        seen = directory.order_version
