"""Unit tests for the fault-injection subsystem (repro.faults).

Covers the three fault classes end to end on tiny clusters: scripted
and stochastic crashes with requeue/checkpoint recovery, load-info
directory eviction/readmission and lossy exchange rounds, and
migration transfer failures with retry/backoff/fallback — plus the
config validation and the counter/obs surface.
"""

import pytest

from helpers import job, tiny_cluster, tiny_config

from repro.cluster import Cluster
from repro.cluster.job import JobState
from repro.faults import FaultConfig, FaultPlan, NodeOutage
from repro.scheduling import GLoadSharing


def outage_config(*outages, **overrides):
    """A FaultConfig with scripted crashes only."""
    defaults = dict(mtbf_s=None, plan=FaultPlan(tuple(outages)))
    defaults.update(overrides)
    return FaultConfig(**defaults)


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------
def test_fault_config_validation():
    with pytest.raises(ValueError):
        FaultConfig(mtbf_s=0.0)
    with pytest.raises(ValueError):
        FaultConfig(mttr_s=0.0)
    with pytest.raises(ValueError):
        FaultConfig(crash_policy="retry-harder")
    with pytest.raises(ValueError):
        FaultConfig(loadinfo_drop_prob=1.5)
    with pytest.raises(ValueError):
        FaultConfig(migration_failure_prob=-0.1)
    with pytest.raises(ValueError):
        FaultConfig(migration_max_retries=-1)
    cfg = FaultConfig(mtbf_s=None)
    assert not cfg.crashes_enabled
    assert cfg.replace(plan=FaultPlan((NodeOutage(0, 1.0),))).crashes_enabled
    assert not cfg.loadinfo_faults_enabled
    assert cfg.replace(loadinfo_drop_prob=0.1).loadinfo_faults_enabled


def test_node_outage_validation():
    with pytest.raises(ValueError):
        NodeOutage(node_id=-1, start_s=0.0)
    with pytest.raises(ValueError):
        NodeOutage(node_id=0, start_s=-1.0)
    with pytest.raises(ValueError):
        NodeOutage(node_id=0, start_s=5.0, end_s=5.0)
    # Open-ended outage (never recovers) is fine.
    NodeOutage(node_id=0, start_s=5.0, end_s=None)


def test_fault_plan_rejects_overlap():
    with pytest.raises(ValueError):
        FaultPlan((NodeOutage(0, 0.0, 10.0), NodeOutage(0, 5.0, 15.0)))
    with pytest.raises(ValueError):  # open-ended overlaps everything later
        FaultPlan((NodeOutage(0, 0.0, None), NodeOutage(0, 5.0, 10.0)))
    plan = FaultPlan((NodeOutage(0, 20.0, 30.0), NodeOutage(0, 0.0, 10.0),
                      NodeOutage(1, 5.0, 15.0)))
    assert [o.start_s for o in plan.for_node(0)] == [0.0, 20.0]


def test_plan_outage_beyond_cluster_rejected():
    cfg = tiny_config(num_nodes=2,
                      faults=outage_config(NodeOutage(7, 1.0, 2.0)))
    with pytest.raises(ValueError):
        Cluster(cfg)


# ----------------------------------------------------------------------
# crash / recovery
# ----------------------------------------------------------------------
def test_crash_requeues_running_jobs_and_discards_progress():
    cluster = tiny_cluster(
        faults=outage_config(NodeOutage(0, 10.0, 50.0)))
    policy = GLoadSharing(cluster)
    victim = job(work=100.0, demand=30.0, home=0)
    policy.submit(victim)
    cluster.sim.run()
    assert victim.state is JobState.FINISHED
    # The job restarted from scratch somewhere else after the crash.
    counters = cluster.faults.counters
    assert counters["crashes"] == 1
    assert counters["lost_jobs"] == 1
    assert counters["requeues"] == 1
    assert counters["recoveries"] == 1
    assert cluster.faults.wasted_work_s == pytest.approx(10.0)
    extras = cluster.faults.extra_metrics()
    assert extras["fault.crashes"] == 1.0
    assert extras["fault.wasted_work_s"] == pytest.approx(10.0)


def test_checkpoint_policy_preserves_progress():
    def finish_time(crash_policy):
        cluster = tiny_cluster(faults=outage_config(
            NodeOutage(0, 10.0, 50.0), crash_policy=crash_policy))
        policy = GLoadSharing(cluster)
        victim = job(work=100.0, demand=30.0, home=0)
        policy.submit(victim)
        cluster.sim.run()
        assert victim.state is JobState.FINISHED
        return cluster.sim.now, cluster.faults.wasted_work_s

    requeue_end, requeue_wasted = finish_time("requeue")
    checkpoint_end, checkpoint_wasted = finish_time("checkpoint")
    assert requeue_wasted == pytest.approx(10.0)
    assert checkpoint_wasted == 0.0
    assert checkpoint_end < requeue_end


def test_crash_evicts_from_directory_and_recovery_readmits():
    cluster = tiny_cluster(
        faults=outage_config(NodeOutage(2, 5.0, 20.0)))
    GLoadSharing(cluster)
    directory = cluster.directory
    assert 2 in directory.accepting_ids()
    cluster.sim.run(until=10.0)
    assert not cluster.nodes[2].alive
    assert 2 not in directory.accepting_ids()
    assert 2 not in directory.load_order_ids()
    assert not directory.snapshot(2).alive
    cluster.sim.run(until=25.0)
    assert cluster.nodes[2].alive
    assert 2 in directory.accepting_ids()
    assert 2 in directory.load_order_ids()


def test_dead_node_rejects_jobs_and_reports_no_capacity():
    cluster = tiny_cluster(faults=outage_config(NodeOutage(1, 1.0)))
    cluster.sim.run(until=2.0)
    node = cluster.nodes[1]
    assert not node.alive
    assert not node.accepting
    assert node.idle_memory_mb == 0.0
    with pytest.raises(ValueError):
        node.add_job(job(home=1))
    with pytest.raises(ValueError):
        node.crash()  # already down
    with pytest.raises(ValueError):
        cluster.nodes[0].recover()  # never crashed


def test_job_submitted_with_every_node_dead_waits_for_recovery():
    cluster = tiny_cluster(num_nodes=2, faults=outage_config(
        NodeOutage(0, 1.0, 60.0), NodeOutage(1, 1.0, 40.0)))
    policy = GLoadSharing(cluster)
    late = job(work=10.0, demand=20.0, home=0, submit=5.0)
    cluster.sim.schedule_at(5.0, lambda: policy.submit(late))
    cluster.sim.run(until=30.0)
    # Both nodes down: the job cannot be placed anywhere.
    assert late.state is JobState.PENDING
    assert policy.pending_jobs == [late]
    cluster.sim.run()
    # Node 1 recovers at t=40 and the pending queue drains into it.
    assert late.state is JobState.FINISHED
    assert cluster.sim.now >= 40.0


def test_stochastic_crashes_follow_fault_seed():
    def counters(fault_seed):
        cluster = tiny_cluster(faults=FaultConfig(
            mtbf_s=50.0, mttr_s=5.0, fault_seed=fault_seed))
        GLoadSharing(cluster)
        cluster.sim.run(until=500.0)
        return dict(cluster.faults.counters)

    first = counters(0)
    again = counters(0)
    other = counters(1)
    assert first["crashes"] > 0
    assert first == again
    assert first != other


# ----------------------------------------------------------------------
# lossy load information
# ----------------------------------------------------------------------
def test_loadinfo_drops_keep_snapshot_stale():
    cluster = tiny_cluster(
        load_exchange_interval_s=1.0,
        faults=FaultConfig(mtbf_s=None, loadinfo_drop_prob=1.0))
    node = cluster.nodes[0]
    node.add_job(job(work=500.0, demand=30.0, home=0))
    cluster.sim.run(until=3.5)
    # Every exchange update was lost: the directory still shows the
    # pre-job state, and the node stays dirty for the next round.
    assert cluster.directory.snapshot(0).num_jobs == 0
    assert cluster.faults.counters["loadinfo_drops"] >= 3


def test_loadinfo_delay_applies_snapshot_late():
    cluster = tiny_cluster(
        load_exchange_interval_s=1.0,
        faults=FaultConfig(mtbf_s=None, loadinfo_delay_prob=1.0,
                           loadinfo_delay_s=0.5))
    node = cluster.nodes[0]
    node.add_job(job(work=500.0, demand=30.0, home=0))
    cluster.sim.run(until=1.2)
    assert cluster.directory.snapshot(0).num_jobs == 0  # still in flight
    cluster.sim.run(until=1.6)
    assert cluster.directory.snapshot(0).num_jobs == 1  # landed at 1.5
    assert cluster.faults.counters["loadinfo_delays"] >= 1


def test_delayed_snapshot_for_crashed_node_is_discarded():
    cluster = tiny_cluster(
        load_exchange_interval_s=1.0,
        faults=FaultConfig(mtbf_s=None, plan=FaultPlan(
            (NodeOutage(0, 1.2, None),)),
            loadinfo_delay_prob=1.0, loadinfo_delay_s=0.5))
    node = cluster.nodes[0]
    node.add_job(job(work=500.0, demand=30.0, home=0))
    # The t=1.0 round delays node 0's update to t=1.5; the node dies at
    # t=1.2, so the late update must not resurrect it in the orders.
    cluster.sim.run(until=2.0)
    assert 0 not in cluster.directory.accepting_ids()
    assert not cluster.directory.snapshot(0).alive


# ----------------------------------------------------------------------
# migration transfer failures
# ----------------------------------------------------------------------
def running_job_on(cluster, node_id, work=500.0, demand=30.0):
    j = job(work=work, demand=demand, home=node_id)
    cluster.nodes[node_id].add_job(j)
    return j


#: Migration tests use a fast link so a 30 MB image flies in ~0.25 s
#: instead of the paper-default 25 s (10 Mbps).
FAST_LINK = 1000.0


def test_failed_transfers_retry_then_fall_back_to_source():
    cluster = tiny_cluster(network_bandwidth_mbps=FAST_LINK,
                           faults=FaultConfig(
        mtbf_s=None, migration_failure_prob=1.0, migration_max_retries=2,
        migration_backoff_base_s=0.5, migration_backoff_cap_s=8.0))
    policy = GLoadSharing(cluster)
    mover = running_job_on(cluster, 0)
    policy.migrate(mover, cluster.nodes[0], cluster.nodes[1])
    cluster.sim.run(until=30.0)
    counters = cluster.faults.counters
    assert counters["migration_failures"] == 3  # initial + 2 retries
    assert counters["migration_retries"] == 2
    assert counters["migration_fallbacks"] == 1
    # The job fell back to local execution at the source.
    assert mover.state is JobState.RUNNING
    assert mover.node_id == 0


def test_backoff_is_capped_exponential():
    cluster = tiny_cluster(network_bandwidth_mbps=FAST_LINK,
                           faults=FaultConfig(
        mtbf_s=None, migration_failure_prob=1.0, migration_max_retries=4,
        migration_backoff_base_s=1.0, migration_backoff_cap_s=3.0))
    policy = GLoadSharing(cluster)
    backoffs = []
    original = cluster.faults.record_migration_retry

    def spy(j, dest, attempt, backoff_s):
        backoffs.append(backoff_s)
        original(j, dest, attempt, backoff_s)

    cluster.faults.record_migration_retry = spy
    mover = running_job_on(cluster, 0)
    policy.migrate(mover, cluster.nodes[0], cluster.nodes[1])
    cluster.sim.run(until=60.0)
    assert backoffs == [1.0, 2.0, 3.0, 3.0]  # 1, 2, 4->3, 8->3


def test_transfer_lands_after_destination_recovers():
    # Destination dies while the image is on the wire (30 MB at
    # 1000 Mbps lands at ~0.35 s) and returns before the retry.
    cluster = tiny_cluster(network_bandwidth_mbps=FAST_LINK,
                           faults=outage_config(
        NodeOutage(1, 0.2, 2.0), migration_backoff_base_s=4.0))
    policy = GLoadSharing(cluster)
    mover = running_job_on(cluster, 0)
    policy.migrate(mover, cluster.nodes[0], cluster.nodes[1])
    cluster.sim.run(until=30.0)
    counters = cluster.faults.counters
    assert counters["migration_failures"] == 1
    assert counters["migration_retries"] == 1
    assert "migration_fallbacks" not in counters
    assert mover.node_id == 1
    assert mover.state is JobState.RUNNING


def test_fallback_requeues_when_source_also_died():
    # Node 1 (destination) dies during the transfer and never returns;
    # node 0 (source) dies before the transfer gives up, so the
    # fallback path has no live source and the job re-enters submission.
    cluster = tiny_cluster(network_bandwidth_mbps=FAST_LINK,
                           faults=outage_config(
        NodeOutage(1, 0.1, None), NodeOutage(0, 0.2, None),
        migration_max_retries=0))
    policy = GLoadSharing(cluster)
    mover = running_job_on(cluster, 0, work=20.0)
    policy.migrate(mover, cluster.nodes[0], cluster.nodes[1])
    cluster.sim.run(until=5.0)
    counters = cluster.faults.counters
    assert counters["migration_fallbacks"] == 1
    assert counters["inflight_requeues"] == 1
    assert mover.state is JobState.RUNNING
    assert mover.node_id in (2, 3)
    cluster.sim.run()
    assert mover.state is JobState.FINISHED


def test_remote_submission_to_dying_node_requeues():
    # The remote submission is in flight (r = 0.1 s) when the
    # destination dies; the job must not strand.
    cluster = tiny_cluster(faults=outage_config(NodeOutage(1, 0.05, None)))
    policy = GLoadSharing(cluster)
    # Force a remote placement to node 1 by filling node 0's slots.
    for _ in range(3):
        running_job_on(cluster, 0, demand=10.0)
    newcomer = job(work=10.0, demand=10.0, home=0)
    policy.submit(newcomer)
    assert newcomer.state is JobState.MIGRATING  # remote submission
    cluster.sim.run(until=50.0)
    assert cluster.faults.counters["inflight_requeues"] >= 1
    assert newcomer.state is not JobState.MIGRATING


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------
def test_fault_events_reach_obs_and_metrics():
    from repro.obs.session import ObsSession

    obs = ObsSession(record_events=True, run_label="faults-test")
    cluster = tiny_cluster(
        faults=outage_config(NodeOutage(0, 10.0, 50.0)))
    policy = GLoadSharing(cluster)
    obs.attach(cluster)
    policy.submit(job(work=100.0, demand=30.0, home=0))
    cluster.sim.run()
    kinds = [e.kind for e in obs.events if e.channel == "fault.injection"]
    assert "crash" in kinds and "recover" in kinds
    snapshot = obs.registry.snapshot()
    assert snapshot["fault_crash"] == 1.0
    assert snapshot["fault_recover"] == 1.0
    assert snapshot["fault_lost_jobs"] == 1.0


# ----------------------------------------------------------------------
# degradation experiment (acceptance property)
# ----------------------------------------------------------------------
def test_degradation_v_reconfiguration_matches_or_beats_g():
    from repro.experiments.degradation import (
        goodput,
        run_degradation_experiment,
    )

    report = run_degradation_experiment(
        scale=0.25, mtbfs=(None, 3000.0, 1500.0), jobs=1)
    for mtbf in report.mtbfs:
        g = goodput(report.summaries[(mtbf, "g-loadsharing")])
        v = goodput(report.summaries[(mtbf, "v-reconfiguration")])
        assert v >= g, f"V goodput below G at mtbf={mtbf}"
    # Crashes actually happened at finite MTBF and hurt goodput.
    crashed = report.summaries[(1500.0, "g-loadsharing")]
    assert crashed.extra["fault.crashes"] > 0
    assert goodput(crashed) < goodput(
        report.summaries[(None, "g-loadsharing")])
    rendered = report.render()
    assert "G goodput" in rendered and "V goodput" in rendered
