"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Simulator, SimulationError
from repro.sim.engine import EventHandle


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, lambda: fired.append("c"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in "abcde":
        sim.schedule(1.0, lambda t=tag: fired.append(t))
    sim.run()
    assert fired == list("abcde")


def test_priority_breaks_ties_before_sequence():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append("low"), priority=5)
    sim.schedule(1.0, lambda: fired.append("high"), priority=0)
    sim.run()
    assert fired == ["high", "low"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append("x"))
    sim.schedule(2.0, lambda: fired.append("y"))
    handle.cancel()
    sim.run()
    assert fired == ["y"]
    assert not handle.pending


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()
    assert sim.event_count == 0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.5, lambda: None)


def test_schedule_in_the_past_rejected():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_events_scheduled_during_events():
    sim = Simulator()
    fired = []

    def first():
        fired.append(("first", sim.now))
        sim.schedule(2.0, lambda: fired.append(("nested", sim.now)))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == [("first", 1.0), ("nested", 3.0)]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    end = sim.run(until=3.0)
    assert fired == [1]
    assert end == 3.0
    assert sim.now == 3.0
    sim.run()
    assert fired == [1, 5]


def test_run_until_advances_clock_even_with_no_events():
    sim = Simulator()
    sim.run(until=7.5)
    assert sim.now == 7.5


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_step_and_peek():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    cancelled = sim.schedule(1.0, lambda: None)
    cancelled.cancel()
    assert sim.peek() == 2.0
    assert sim.step() is True
    assert sim.step() is False


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h1.cancel()
    assert sim.pending_events() == 1


def test_event_count_tracks_executed_events():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.event_count == 5


def test_event_handle_ordering():
    a = EventHandle(1.0, 0, 0, lambda: None)
    b = EventHandle(1.0, 0, 1, lambda: None)
    c = EventHandle(0.5, 9, 2, lambda: None)
    assert a < b
    assert c < a


def test_reentrant_run_rejected():
    sim = Simulator()

    def body():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, body)
    sim.run()


class TestDaemonEvents:
    """Daemon events (periodic services) must not keep an open-ended
    run alive, but still fire while real work remains."""

    def test_open_ended_run_ignores_pure_daemon_queue(self):
        sim = Simulator()
        fired = []

        def tick():
            fired.append(sim.now)
            sim.schedule(1.0, tick, daemon=True)

        sim.schedule(1.0, tick, daemon=True)
        sim.run()
        assert fired == []  # nothing non-daemon ever existed
        assert sim.now == 0.0

    def test_daemons_fire_while_work_remains(self):
        sim = Simulator()
        fired = []

        def tick():
            fired.append(sim.now)
            sim.schedule(1.0, tick, daemon=True)

        sim.schedule(1.0, tick, daemon=True)
        sim.schedule(3.5, lambda: None)  # real work until t=3.5
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_until_executes_daemons(self):
        sim = Simulator()
        fired = []

        def tick():
            fired.append(sim.now)
            sim.schedule(1.0, tick, daemon=True)

        sim.schedule(1.0, tick, daemon=True)
        sim.run(until=2.5)
        assert fired == [1.0, 2.0]

    def test_cancelling_last_non_daemon_stops_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("work"))
        handle = sim.schedule(5.0, lambda: fired.append("late"))
        sim.schedule(2.0, lambda: None, daemon=True)
        handle.cancel()
        sim.run()
        assert fired == ["work"]

    def test_daemon_scheduling_non_daemon_extends_run(self):
        sim = Simulator()
        fired = []

        def daemon():
            # periodic service discovers real work
            sim.schedule(1.0, lambda: fired.append(sim.now))

        sim.schedule(1.0, daemon, daemon=True)
        sim.schedule(1.5, lambda: fired.append("anchor"))
        sim.run()
        assert "anchor" in fired
        assert 2.0 in fired


class TestPendingEventsCounter:
    """pending_events() is counter-backed (O(1)), so it must stay
    consistent through every schedule/cancel/fire path."""

    def test_counts_daemon_and_non_daemon(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None, daemon=True)
        assert sim.pending_events() == 2

    def test_decrements_on_fire(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None, daemon=True)
        sim.schedule(1.5, lambda: None)
        sim.run()  # stops once only the daemon remains
        assert sim.pending_events() == 1

    def test_decrements_on_daemon_cancel(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None, daemon=True)
        handle.cancel()
        assert sim.pending_events() == 0

    def test_matches_heap_scan_through_mixed_activity(self):
        sim = Simulator()
        handles = []
        for i in range(50):
            handles.append(sim.schedule(float(i + 1), lambda: None,
                                        daemon=(i % 3 == 0)))
        for handle in handles[::2]:
            handle.cancel()
        expected = sum(1 for ev in sim._heap if ev.pending)
        assert sim.pending_events() == expected
        sim.run(until=10.0)
        expected = sum(1 for ev in sim._heap if ev.pending)
        assert sim.pending_events() == expected


class TestHeapCompaction:
    """Lazily-cancelled events must not accumulate without bound."""

    def test_cancelled_majority_is_compacted(self):
        sim = Simulator()
        handles = [sim.schedule(1000.0 + i, lambda: None)
                   for i in range(500)]
        for handle in handles:
            handle.cancel()
        # One live far-future event plus a new schedule triggers the
        # rebuild: the dead 500 must be gone from the heap.
        sim.schedule(1.0, lambda: None)
        assert len(sim._heap) <= 2
        assert sim.pending_events() == 1

    def test_small_heaps_left_alone(self):
        sim = Simulator()
        handles = [sim.schedule(10.0 + i, lambda: None) for i in range(10)]
        for handle in handles:
            handle.cancel()
        sim.schedule(1.0, lambda: None)
        # below the compaction floor: lazy entries may linger
        assert sim.pending_events() == 1

    def test_compaction_preserves_order_and_results(self):
        sim = Simulator()
        fired = []
        keep = []
        for i in range(200):
            handle = sim.schedule(float(i + 1),
                                  lambda i=i: fired.append(i))
            if i % 7 == 0:
                keep.append(i)
            else:
                handle.cancel()
        sim.run()
        assert fired == keep

    def test_compaction_bounds_heap_under_churn(self):
        """Schedule-and-cancel churn (the migration-heavy pattern)
        keeps the heap near the live-event count."""
        sim = Simulator()
        live = sim.schedule(1e9, lambda: None)  # keeps the run alive
        previous = None
        for i in range(10_000):
            if previous is not None:
                previous.cancel()
            previous = sim.schedule(1e6 + i, lambda: None)
        assert len(sim._heap) < 200
        assert sim.pending_events() == 2
        live.cancel()
        previous.cancel()
