"""Integration tests for the experiment harness (small scales)."""

import pytest

from repro.experiments.runner import (
    POLICIES,
    default_config,
    run_experiment,
    subsample_trace,
)
from repro.experiments.scenario import (
    build_blocking_trace,
    large_job_slowdowns,
    run_blocking_scenario,
)
from repro.experiments.tables import (
    render_table1,
    render_table2,
    table1_rows,
    table2_rows,
)
from repro.workload.generator import build_trace
from repro.workload.programs import WorkloadGroup

SCALE = 0.08  # ~30-60 jobs per run: fast but end-to-end


class TestRunner:
    def test_policy_registry_complete(self):
        assert set(POLICIES) == {"local", "cpu", "memory",
                                 "g-loadsharing", "suspension",
                                 "srpt-oracle", "v-reconfiguration"}

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError):
            run_experiment(WorkloadGroup.APP, 1, policy="quantum")

    def test_default_configs_match_paper_clusters(self):
        spec = default_config(WorkloadGroup.SPEC)
        app = default_config(WorkloadGroup.APP)
        assert spec.spec.memory_mb == 384.0
        assert app.spec.memory_mb == 128.0
        assert spec.num_nodes == app.num_nodes == 32

    def test_subsample_preserves_shape(self):
        trace = build_trace(WorkloadGroup.APP, 1)
        quarter = subsample_trace(trace, 0.25)
        assert quarter.num_jobs == pytest.approx(trace.num_jobs / 4,
                                                 abs=2)
        assert quarter.jobs[0].submit_time == trace.jobs[0].submit_time
        with pytest.raises(ValueError):
            subsample_trace(trace, 0.0)

    def test_run_experiment_end_to_end(self):
        result = run_experiment(WorkloadGroup.APP, 1,
                                policy="g-loadsharing", scale=SCALE)
        summary = result.summary
        assert summary.num_jobs > 10
        assert summary.average_slowdown >= 1.0
        assert summary.makespan_s > 0
        assert len(result.cluster.finished_jobs) == summary.num_jobs

    def test_deterministic_given_seed(self):
        a = run_experiment(WorkloadGroup.APP, 1, policy="g-loadsharing",
                           scale=SCALE, seed=3).summary
        b = run_experiment(WorkloadGroup.APP, 1, policy="g-loadsharing",
                           scale=SCALE, seed=3).summary
        assert a.total_execution_time_s == b.total_execution_time_s
        assert a.average_slowdown == b.average_slowdown

    def test_all_policies_drain(self):
        for policy in POLICIES:
            summary = run_experiment(WorkloadGroup.APP, 1, policy=policy,
                                     scale=SCALE).summary
            assert summary.num_jobs > 0, policy

    def test_wall_time_decomposition_cluster_wide(self):
        """The §5 identity T_exe = T_cpu+T_page+T_io+T_que+T_mig holds
        for a full experiment."""
        summary = run_experiment(WorkloadGroup.APP, 1,
                                 policy="v-reconfiguration",
                                 scale=SCALE).summary
        parts = (summary.total_cpu_time_s + summary.total_paging_time_s
                 + summary.total_io_time_s + summary.total_queuing_time_s
                 + summary.total_migration_time_s)
        assert parts == pytest.approx(summary.total_execution_time_s,
                                      rel=1e-6)


class TestTables:
    def test_table1_rows(self):
        rows = table1_rows()
        assert len(rows) == 6
        apsi = next(r for r in rows if r["Programs"] == "apsi")
        assert apsi["lifetime (s)"] == "2,619.0"

    def test_table2_rows(self):
        rows = table2_rows()
        assert len(rows) == 7
        metis = next(r for r in rows if r["Programs"] == "metis")
        assert "1M-4M" in metis["data size"]

    def test_render(self):
        assert "apsi" in render_table1()
        assert "r-wing" in render_table2()


class TestBlockingScenario:
    def test_trace_geometry(self):
        trace = build_blocking_trace(num_nodes=32, seed=0)
        larges = [j for j in trace.jobs if j.peak_demand_mb > 200]
        assert len(larges) == 4
        # wedge homes are distinct and at the high end
        assert len({j.home_node for j in larges}) == 4
        assert all(j.home_node >= 28 for j in larges)

    def test_mechanism_envelope(self):
        """The headline property: V-Reconfiguration resolves the
        constructed blocking problem (rescues fire, paging collapses,
        large jobs speed up) where G-Loadsharing cannot."""
        base = run_blocking_scenario("g-loadsharing", num_nodes=32)
        reco = run_blocking_scenario("v-reconfiguration", num_nodes=32)
        assert base.summary.blocking_events > 0
        assert reco.summary.extra.get("reconfiguration_migrations",
                                      0) >= 1
        assert (reco.summary.total_paging_time_s
                < 0.25 * base.summary.total_paging_time_s)
        big_base = large_job_slowdowns(base)
        big_reco = large_job_slowdowns(reco)
        assert (sum(big_reco) / len(big_reco)
                < sum(big_base) / len(big_base))
        # adaptive switch-back: nothing stays reserved
        assert reco.cluster.reserved_nodes() == []


class TestSubsampleValidation:
    def test_unrealizable_scale_rejected(self):
        """0.5 < scale < 1 would stride-round to the full trace;
        that silent no-op must raise instead."""
        trace = build_trace(WorkloadGroup.APP, 1)
        with pytest.raises(ValueError):
            subsample_trace(trace, 0.75)
        with pytest.raises(ValueError):
            subsample_trace(trace, 0.9)
        # 0.51 rounds to stride 2 — a legitimate (if coarse) half-trace
        assert subsample_trace(trace, 0.51).num_jobs < trace.num_jobs

    def test_boundary_scales_ok(self):
        trace = build_trace(WorkloadGroup.APP, 1)
        assert subsample_trace(trace, 1.0) is trace
        half = subsample_trace(trace, 0.5)
        assert half.num_jobs == pytest.approx(trace.num_jobs / 2, abs=1)

    def test_duration_not_scaled(self):
        """Thinning keeps every k-th arrival at its original instant:
        the trace still spans the full duration."""
        trace = build_trace(WorkloadGroup.APP, 1)
        quarter = subsample_trace(trace, 0.25)
        assert quarter.duration_s == trace.duration_s


class TestTraceCache:
    def test_same_args_share_one_trace(self):
        from repro.workload.generator import clear_trace_cache

        clear_trace_cache()
        a = build_trace(WorkloadGroup.APP, 2, seed=5)
        b = build_trace(WorkloadGroup.APP, 2, seed=5)
        assert a is b

    def test_distinct_args_distinct_traces(self):
        a = build_trace(WorkloadGroup.APP, 2, seed=5)
        b = build_trace(WorkloadGroup.APP, 2, seed=6)
        c = build_trace(WorkloadGroup.SPEC, 2, seed=5)
        assert a is not b
        assert a is not c

    def test_explicit_generator_bypasses_cache(self):
        from repro.workload.generator import TraceGenerator

        gen = TraceGenerator(num_nodes=32, seed=5)
        a = build_trace(WorkloadGroup.APP, 2, seed=5, generator=gen)
        b = build_trace(WorkloadGroup.APP, 2, seed=5)
        assert a is not b
        assert [j.submit_time for j in a.jobs] == \
            [j.submit_time for j in b.jobs]

    def test_cached_trace_runs_are_independent(self):
        """Two runs over the shared trace must not interfere: each
        materializes fresh Job objects."""
        a = run_experiment(WorkloadGroup.APP, 1, policy="g-loadsharing",
                           scale=SCALE).summary
        b = run_experiment(WorkloadGroup.APP, 1, policy="g-loadsharing",
                           scale=SCALE).summary
        assert a == b
