"""Unit tests for the load-info directory and the Cluster facade."""

import pytest

from repro.cluster import Cluster, ClusterConfig, WorkstationSpec
from repro.cluster.job import Job, MemoryProfile


def small_config(**kwargs):
    defaults = dict(
        num_nodes=4,
        spec=WorkstationSpec(memory_mb=100.0, swap_mb=100.0),
        kernel_reserved_mb=0.0,
        load_exchange_interval_s=1.0,
    )
    defaults.update(kwargs)
    return ClusterConfig(**defaults)


def make_job(work=50.0, demand=30.0, **kwargs):
    return Job(program="t", cpu_work_s=work,
               memory=MemoryProfile.constant(demand), **kwargs)


class TestLoadInfoDirectory:
    def test_snapshots_cover_all_nodes(self):
        cluster = Cluster(small_config())
        snaps = cluster.directory.snapshots()
        assert [s.node_id for s in snaps] == [0, 1, 2, 3]

    def test_snapshots_are_stale_between_exchanges(self):
        cluster = Cluster(small_config(load_exchange_interval_s=10.0))
        cluster.nodes[0].add_job(make_job())
        # before the next exchange the directory still shows 0 jobs
        assert cluster.directory.snapshot(0).num_jobs == 0
        cluster.sim.run(until=10.5)
        assert cluster.directory.snapshot(0).num_jobs == 1

    def test_zero_interval_is_always_fresh(self):
        cluster = Cluster(small_config(load_exchange_interval_s=0.0))
        cluster.nodes[0].add_job(make_job())
        assert cluster.directory.snapshot(0).num_jobs == 1

    def test_periodic_refresh_counts(self):
        cluster = Cluster(small_config(load_exchange_interval_s=1.0))
        cluster.sim.run(until=5.5)
        # one initial refresh plus one per second
        assert cluster.directory.refreshes == 6

    def test_snapshot_fields(self):
        cluster = Cluster(small_config(load_exchange_interval_s=0.0))
        cluster.nodes[1].add_job(make_job(demand=40.0))
        snap = cluster.directory.snapshot(1)
        assert snap.num_jobs == 1
        assert snap.idle_memory_mb == pytest.approx(60.0)
        assert snap.total_demand_mb == pytest.approx(40.0)
        assert snap.accepting


class TestCluster:
    def test_cluster_builds_configured_nodes(self):
        cluster = Cluster(small_config())
        assert cluster.num_nodes == 4
        assert all(node.user_memory_mb == 100.0 for node in cluster.nodes)

    def test_heterogeneous_overrides(self):
        config = small_config()
        config.node_overrides[2] = WorkstationSpec(memory_mb=512.0,
                                                   swap_mb=512.0)
        cluster = Cluster(config)
        assert cluster.nodes[2].user_memory_mb == 512.0
        assert cluster.nodes[1].user_memory_mb == 100.0

    def test_total_idle_memory(self):
        cluster = Cluster(small_config())
        assert cluster.total_idle_memory_mb() == pytest.approx(400.0)
        cluster.nodes[0].add_job(make_job(demand=30.0))
        assert cluster.total_idle_memory_mb() == pytest.approx(370.0)

    def test_total_idle_memory_excluding_reserved(self):
        cluster = Cluster(small_config())
        cluster.nodes[3].reserved = True
        assert cluster.total_idle_memory_mb(exclude_reserved=True) == \
            pytest.approx(300.0)

    def test_average_user_memory(self):
        cluster = Cluster(small_config())
        assert cluster.average_user_memory_mb() == pytest.approx(100.0)

    def test_finished_jobs_and_listeners(self):
        cluster = Cluster(small_config())
        seen = []
        cluster.on_job_finished(lambda job, node: seen.append(job.job_id))
        job = make_job(work=10.0)
        cluster.nodes[0].add_job(job)
        cluster.sim.run()
        assert cluster.finished_jobs == [job]
        assert seen == [job.job_id]

    def test_node_change_listener_fires_on_completion(self):
        cluster = Cluster(small_config())
        changed = []
        cluster.on_node_changed(lambda node: changed.append(node.node_id))
        cluster.nodes[2].add_job(make_job(work=5.0))
        cluster.sim.run()
        assert 2 in changed

    def test_running_jobs_snapshot(self):
        cluster = Cluster(small_config())
        a = make_job(work=100.0)
        b = make_job(work=100.0)
        cluster.nodes[0].add_job(a)
        cluster.nodes[1].add_job(b)
        running = cluster.running_jobs()
        assert {job.job_id for job in running} == {a.job_id, b.job_id}

    def test_reserved_nodes_listing(self):
        cluster = Cluster(small_config())
        assert cluster.reserved_nodes() == []
        cluster.nodes[1].reserved = True
        assert [n.node_id for n in cluster.reserved_nodes()] == [1]


class TestConfigReplace:
    def test_replace_does_not_share_node_overrides(self):
        """Regression: heterogeneous setups mutate the copy's
        node_overrides; the original (e.g. the module-level cluster
        defaults) must be unaffected."""
        from repro.cluster.config import APP_CLUSTER
        copy = APP_CLUSTER.replace()
        copy.node_overrides[0] = WorkstationSpec(memory_mb=999.0,
                                                 swap_mb=0.0)
        assert 0 not in APP_CLUSTER.node_overrides

    def test_replace_applies_changes(self):
        config = small_config(cpu_threshold=4)
        changed = config.replace(cpu_threshold=9)
        assert changed.cpu_threshold == 9
        assert config.cpu_threshold == 4  # original untouched
        assert changed.num_nodes == config.num_nodes


class TestLiveModeDirectory:
    """Live mode (``load_exchange_interval_s == 0``): the directory
    repositions per node change and computes snapshots on demand —
    evict/readmit and delayed updates behave differently there."""

    def test_live_node_change_repositions_immediately(self):
        cluster = Cluster(small_config(load_exchange_interval_s=0.0))
        directory = cluster.directory
        assert directory.accepting_ids()[0] == 0
        version = directory.order_version
        cluster.nodes[0].add_job(make_job(demand=60.0))
        cluster.notify_node_changed(cluster.nodes[0])
        # Node 0 published less idle memory: it sinks in the order.
        assert directory.accepting_ids()[-1] == 0
        assert directory.order_version > version

    def test_live_evict_and_readmit(self):
        cluster = Cluster(small_config(load_exchange_interval_s=0.0))
        directory = cluster.directory
        directory.accepting_ids()  # activate the maintained orders
        cluster.nodes[2].crash()
        directory.evict(2)
        assert 2 not in directory.accepting_ids()
        assert 2 not in directory.load_order_ids()
        assert not directory.snapshot(2).alive
        cluster.nodes[2].recover()
        directory.readmit(2)
        assert 2 in directory.accepting_ids()
        assert 2 in directory.load_order_ids()
        assert directory.snapshot(2).alive

    def test_delayed_update_discarded_after_evict(self):
        """A load report delayed in flight must not resurrect a node
        that crashed (and was evicted) before it landed."""
        cluster = Cluster(small_config(load_exchange_interval_s=1.0))
        directory = cluster.directory
        directory.accepting_ids()
        directory.fault_hook = (
            lambda node_id: ("delay", 5.0) if node_id == 1 else (None, 0.0))
        cluster.nodes[1].add_job(make_job(work=500.0))
        cluster.sim.run(until=1.5)  # exchange collects node 1, delays it
        cluster.nodes[1].crash()
        directory.evict(1)
        assert 1 not in directory.accepting_ids()
        cluster.sim.run(until=8.0)  # the delayed snapshot lands — dead node
        assert 1 not in directory.accepting_ids()
        assert 1 not in directory.load_order_ids()
        assert not directory.snapshot(1).alive

    def test_delayed_update_lands_on_live_node(self):
        """The same delayed report *does* land (out of order) when the
        node stayed alive — re-delivered stale state is the modeled
        behavior, not an error."""
        cluster = Cluster(small_config(load_exchange_interval_s=1.0))
        directory = cluster.directory
        directory.fault_hook = (
            lambda node_id: ("delay", 5.0) if node_id == 1 else (None, 0.0))
        cluster.nodes[1].add_job(make_job(work=500.0, demand=60.0))
        cluster.sim.run(until=1.5)
        # Not landed yet: the directory still shows the t=0 view.
        assert directory.snapshot(1).num_jobs == 0
        cluster.sim.run(until=8.0)
        assert directory.snapshot(1).num_jobs == 1
        assert directory.snapshot(1).idle_memory_mb == pytest.approx(40.0)
