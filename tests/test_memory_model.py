"""Unit and property tests for the paging model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.cluster.memory import PagingModel


@pytest.fixture
def model():
    return PagingModel(alpha=0.5, max_fault_rate_per_cpu_s=400.0,
                       fault_service_s=0.010)


class TestResidency:
    def test_no_jobs(self, model):
        assert model.residency([], 100.0) == []

    def test_fits_entirely(self, model):
        assert model.residency([30.0, 40.0], 100.0) == [30.0, 40.0]

    def test_exact_fit(self, model):
        assert model.residency([60.0, 40.0], 100.0) == [60.0, 40.0]

    def test_oversubscribed_uses_all_memory(self, model):
        resident = model.residency([80.0, 80.0], 100.0)
        assert math.isclose(sum(resident), 100.0)

    def test_equal_demands_split_equally(self, model):
        resident = model.residency([80.0, 80.0], 100.0)
        assert math.isclose(resident[0], resident[1])

    def test_small_job_keeps_larger_resident_fraction(self, model):
        """The competition bias: large jobs are less competitive."""
        resident = model.residency([20.0, 180.0], 100.0)
        small_frac = resident[0] / 20.0
        large_frac = resident[1] / 180.0
        assert small_frac > large_frac

    def test_alpha_one_is_proportional(self):
        model = PagingModel(alpha=1.0)
        resident = model.residency([50.0, 150.0], 100.0)
        assert math.isclose(resident[0], 25.0)
        assert math.isclose(resident[1], 75.0)

    def test_tiny_job_fully_resident_under_bias(self, model):
        # With strong bias a very small job's share exceeds its demand,
        # so it stays fully resident and the rest spills to the big job.
        resident = model.residency([1.0, 500.0], 100.0)
        assert math.isclose(resident[0], 1.0)
        assert math.isclose(resident[1], 99.0)

    def test_zero_demand_job(self, model):
        resident = model.residency([0.0, 200.0], 100.0)
        assert resident[0] == 0.0
        assert math.isclose(resident[1], 100.0)

    def test_negative_demand_rejected(self, model):
        with pytest.raises(ValueError):
            model.residency([-1.0], 100.0)

    @given(
        demands=st.lists(st.floats(min_value=0.0, max_value=500.0),
                         min_size=1, max_size=12),
        memory=st.floats(min_value=1.0, max_value=400.0),
        alpha=st.floats(min_value=0.1, max_value=1.0),
    )
    def test_invariants(self, demands, memory, alpha):
        model = PagingModel(alpha=alpha)
        resident = model.residency(demands, memory)
        assert len(resident) == len(demands)
        for res, demand in zip(resident, demands):
            assert -1e-9 <= res <= demand + 1e-9
        total_demand = sum(demands)
        total_resident = sum(resident)
        if total_demand <= memory:
            assert math.isclose(total_resident, total_demand,
                                rel_tol=1e-9, abs_tol=1e-9)
        else:
            # all memory is used when demand exceeds it
            assert math.isclose(total_resident, memory,
                                rel_tol=1e-6, abs_tol=1e-6)


class TestFaultRates:
    def test_no_faults_when_memory_fits(self, model):
        assessment = model.assess([100.0, 100.0], 300.0)
        assert assessment.fault_rates_per_cpu_s == [0.0, 0.0]
        assert not assessment.oversubscribed

    def test_faults_when_oversubscribed(self, model):
        assessment = model.assess([200.0, 200.0], 300.0)
        assert assessment.oversubscribed
        assert all(rate > 0 for rate in assessment.fault_rates_per_cpu_s)

    def test_fault_rate_proportional_to_missing_fraction(self, model):
        assessment = model.assess([200.0], 100.0)
        # half the working set missing -> half the max rate
        assert math.isclose(assessment.fault_rates_per_cpu_s[0], 200.0)

    def test_stall_uses_fault_service_time(self, model):
        assessment = model.assess([200.0], 100.0)
        assert math.isclose(assessment.stall_per_work_s[0], 200.0 * 0.010)

    def test_large_job_faults_harder_than_small(self, model):
        assessment = model.assess([20.0, 180.0], 100.0)
        rates = assessment.fault_rates_per_cpu_s
        assert rates[1] > rates[0]

    def test_network_ram_style_service_time(self):
        fast = PagingModel(alpha=0.5, max_fault_rate_per_cpu_s=400.0,
                           fault_service_s=0.001)
        slow = PagingModel(alpha=0.5, max_fault_rate_per_cpu_s=400.0,
                           fault_service_s=0.010)
        demands, memory = [200.0], 100.0
        assert (fast.assess(demands, memory).stall_per_work_s[0]
                < slow.assess(demands, memory).stall_per_work_s[0])

    def test_pressure_monotone_in_oversubscription(self, model):
        stalls = [model.assess([float(d)], 100.0).stall_per_work_s[0]
                  for d in (100, 150, 200, 400)]
        assert stalls == sorted(stalls)
        assert stalls[0] == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            PagingModel(alpha=0.0)
        with pytest.raises(ValueError):
            PagingModel(alpha=1.5)
        with pytest.raises(ValueError):
            PagingModel(max_fault_rate_per_cpu_s=-1.0)
        with pytest.raises(ValueError):
            PagingModel(fault_service_s=0.0)


class TestThrashingCliff:
    def test_exponent_one_is_linear(self):
        linear = PagingModel(max_fault_rate_per_cpu_s=100.0,
                             curve_exponent=1.0)
        assessment = linear.assess([200.0], 100.0)
        assert assessment.fault_rates_per_cpu_s[0] == pytest.approx(50.0)

    def test_cliff_suppresses_mild_oversubscription(self):
        cliff = PagingModel(max_fault_rate_per_cpu_s=100.0,
                            curve_exponent=2.0)
        mild = cliff.assess([110.0], 100.0).fault_rates_per_cpu_s[0]
        deep = cliff.assess([400.0], 100.0).fault_rates_per_cpu_s[0]
        # 9% missing squared ~ 0.8 faults/cpu-s; 75% missing ~ 56
        assert mild < 1.0
        assert deep > 50.0

    def test_higher_exponent_never_raises_rates(self):
        soft = PagingModel(max_fault_rate_per_cpu_s=100.0,
                           curve_exponent=1.0)
        hard = PagingModel(max_fault_rate_per_cpu_s=100.0,
                           curve_exponent=2.5)
        for demand in (120.0, 200.0, 500.0):
            s = soft.assess([demand], 100.0).fault_rates_per_cpu_s[0]
            h = hard.assess([demand], 100.0).fault_rates_per_cpu_s[0]
            assert h <= s + 1e-9

    def test_invalid_exponent_rejected(self):
        with pytest.raises(ValueError):
            PagingModel(curve_exponent=0.5)

    def test_full_miss_independent_of_exponent(self):
        for exponent in (1.0, 1.5, 3.0):
            model = PagingModel(max_fault_rate_per_cpu_s=100.0,
                                curve_exponent=exponent)
            demands = [100.0, 1000000.0]
            rates = model.assess(demands, 1.0).fault_rates_per_cpu_s
            assert rates[1] == pytest.approx(100.0, rel=0.01)
