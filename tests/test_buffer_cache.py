"""Unit tests for the I/O buffer-cache model."""

import pytest

from repro.cluster.job import Job, MemoryProfile

from helpers import job, tiny_cluster


def io_job(work=100.0, demand=10.0, io=1.0, cache=50.0):
    return Job(program="io", cpu_work_s=work,
               memory=MemoryProfile.constant(demand),
               io_stall_per_cpu_s=io, buffer_cache_mb=cache)


class TestBufferCache:
    def test_cached_io_runs_at_nominal_stall(self):
        """Plenty of free memory: the cache fits, I/O costs exactly the
        nominal stall."""
        cluster = tiny_cluster(num_nodes=1, memory_mb=500.0)
        j = io_job(work=100.0, io=1.0, cache=50.0)
        cluster.nodes[0].add_job(j)
        cluster.sim.run()
        # wall = work * (1 + io) = 200s
        assert j.finish_time == pytest.approx(200.0, rel=1e-6)
        assert j.acct.io_s == pytest.approx(100.0, rel=1e-6)

    def test_squeezed_cache_inflates_io(self):
        """Memory pressure reclaims the cache: I/O slows down by the
        uncached penalty."""
        cluster = tiny_cluster(num_nodes=1, memory_mb=100.0,
                               uncached_io_penalty=2.0)
        hog = job(work=1000.0, demand=100.0)  # eats all free memory
        io = io_job(work=50.0, demand=0.0, io=1.0, cache=50.0)
        cluster.nodes[0].add_job(hog)
        cluster.nodes[0].add_job(io)
        cluster.sim.run(until=400.0)
        # cache hit 0 -> io stall factor 1 + 2.0 = 3.0
        cluster.nodes[0].running_jobs
        assert io.acct.io_s > 0
        per_cpu_io = io.acct.io_s / max(io.acct.cpu_s, 1e-9)
        assert per_cpu_io == pytest.approx(3.0, rel=0.05)

    def test_partial_cache_partial_penalty(self):
        cluster = tiny_cluster(num_nodes=1, memory_mb=100.0,
                               uncached_io_penalty=2.0)
        hog = job(work=1000.0, demand=75.0)   # leaves 25MB free
        io = io_job(work=50.0, demand=0.0, io=1.0, cache=50.0)
        cluster.nodes[0].add_job(hog)
        cluster.nodes[0].add_job(io)
        cluster.sim.run(until=200.0)
        cluster.nodes[0].running_jobs
        # cache hit 0.5 -> factor 1 + 2.0*0.5 = 2.0
        per_cpu_io = io.acct.io_s / max(io.acct.cpu_s, 1e-9)
        assert per_cpu_io == pytest.approx(2.0, rel=0.05)

    def test_jobs_without_cache_unaffected(self):
        cluster = tiny_cluster(num_nodes=1, memory_mb=100.0)
        hog = job(work=50.0, demand=100.0)
        plain = job(work=50.0, demand=0.0)
        cluster.nodes[0].add_job(hog)
        cluster.nodes[0].add_job(plain)
        cluster.sim.run()
        assert plain.acct.io_s == pytest.approx(0.0)

    def test_cache_never_causes_faults(self):
        """The cache is reclaimed before anyone pages: a job whose
        *cache* wish exceeds free memory must not fault."""
        cluster = tiny_cluster(num_nodes=1, memory_mb=100.0)
        io = io_job(work=50.0, demand=40.0, io=0.5, cache=500.0)
        cluster.nodes[0].add_job(io)
        assert not cluster.nodes[0].thrashing
        cluster.sim.run()
        assert io.acct.page_s == pytest.approx(0.0)

    def test_group2_programs_carry_cache(self):
        from repro.workload.programs import APP_PROGRAMS
        io_programs = [p for p in APP_PROGRAMS
                       if p.io_stall_per_cpu_s > 0]
        assert all(p.buffer_cache_mb > 0 for p in io_programs)

    def test_trace_round_trips_cache(self):
        import io as _io
        from repro.workload.generator import build_trace
        from repro.workload.programs import WorkloadGroup
        from repro.workload.trace import Trace
        trace = build_trace(WorkloadGroup.APP, 1, seed=1)
        loaded = Trace.read(_io.StringIO(trace.dumps()))
        cached = [j for j in trace.jobs if j.buffer_cache_mb > 0]
        assert cached
        for a, b in zip(trace.jobs, loaded.jobs):
            assert b.buffer_cache_mb == pytest.approx(a.buffer_cache_mb,
                                                      abs=1e-3)
