"""The candidate index is a pure optimization — behavior pinned here.

``indexed_selection=False`` runs the seed's sorted-snapshot selection
and full-rebuild exchange rounds; ``True`` (the default) runs the
incremental index.  For every policy that consults the directory, both
paths must produce an *identical* :class:`RunSummary` — same
placements, migrations, timings — in the periodic and live staleness
regimes.  Any divergence means the index changed scheduling decisions,
not just their cost.
"""

import pytest

from repro.experiments.runner import default_config, run_experiment
from repro.workload.programs import WorkloadGroup

#: Policies whose selection logic touches the candidate orders.
POLICIES = ["cpu", "memory", "g-loadsharing", "v-reconfiguration",
            "suspension"]


def summary_for(policy, indexed, interval=None):
    cfg = default_config(WorkloadGroup.SPEC).replace(
        indexed_selection=indexed)
    if interval is not None:
        cfg = cfg.replace(load_exchange_interval_s=interval)
    result = run_experiment(WorkloadGroup.SPEC, 3, policy=policy,
                            seed=0, scale=0.1, config=cfg)
    return result.summary, result.cluster.sim.event_count


@pytest.mark.parametrize("policy", POLICIES)
def test_indexed_matches_legacy_periodic(policy):
    indexed, indexed_events = summary_for(policy, True)
    legacy, legacy_events = summary_for(policy, False)
    assert indexed == legacy
    assert indexed_events == legacy_events


@pytest.mark.parametrize("policy", ["g-loadsharing", "memory", "cpu"])
def test_indexed_matches_legacy_live(policy):
    """Live mode (interval 0) repositions per node change instead of
    per exchange round — still byte-identical."""
    indexed, indexed_events = summary_for(policy, True, interval=0.0)
    legacy, legacy_events = summary_for(policy, False, interval=0.0)
    assert indexed == legacy
    assert indexed_events == legacy_events


def test_larger_cluster_equivalence():
    """The 256-node scale-bench comparison is valid only if both paths
    agree there too (smaller stand-in kept test-suite fast)."""
    cfg_indexed = default_config(WorkloadGroup.SPEC).replace(num_nodes=96)
    cfg_legacy = cfg_indexed.replace(indexed_selection=False)
    indexed = run_experiment(WorkloadGroup.SPEC, 3, policy="memory",
                             seed=0, scale=0.1, config=cfg_indexed).summary
    legacy = run_experiment(WorkloadGroup.SPEC, 3, policy="memory",
                            seed=0, scale=0.1, config=cfg_legacy).summary
    assert indexed == legacy
