"""Tests for the parallel sweep executor (repro.experiments.parallel).

Determinism is the contract under test: a sweep fanned out to worker
processes must return exactly the summaries the serial path produces,
in spec order, and a failing run must surface with its RunSpec.
"""

import pytest

from repro.experiments.parallel import (
    RunSpec,
    SweepError,
    execute_spec,
    run_specs,
)
from repro.experiments.runner import run_group
from repro.workload.programs import WorkloadGroup

#: Small but end-to-end: a few dozen jobs per run.
SCALE = 0.08


def specs_for(policies, indices=(1, 2)):
    return [RunSpec(group=WorkloadGroup.APP, trace_index=index,
                    policy=policy, seed=0, scale=SCALE)
            for index in indices
            for policy in policies]


class TestDeterminism:
    def test_serial_matches_parallel(self):
        specs = specs_for(["g-loadsharing", "v-reconfiguration"],
                          indices=(1,))
        serial = run_specs(specs, jobs=1)
        parallel = run_specs(specs, jobs=2)
        assert serial == parallel

    def test_execute_spec_matches_run_specs(self):
        spec = RunSpec(group=WorkloadGroup.APP, trace_index=1,
                       policy="g-loadsharing", seed=0, scale=SCALE)
        assert execute_spec(spec) == run_specs([spec], jobs=2)[0]

    def test_run_group_jobs_parameter(self):
        serial = run_group(WorkloadGroup.APP, "g-loadsharing",
                           scale=SCALE, trace_indices=[1, 2], jobs=1)
        parallel = run_group(WorkloadGroup.APP, "g-loadsharing",
                             scale=SCALE, trace_indices=[1, 2], jobs=2)
        assert serial == parallel


class TestOrdering:
    def test_results_match_spec_order(self):
        specs = specs_for(["local", "g-loadsharing"], indices=(1, 2))
        results = run_specs(specs, jobs=2)
        assert len(results) == len(specs)
        for spec, summary in zip(specs, results):
            assert summary.trace.endswith(str(spec.trace_index))
            # policy registry names map onto summary policy labels
            if spec.policy == "local":
                assert summary.policy == "Local"
            else:
                assert summary.policy == "G-Loadsharing"

    def test_single_spec_runs_inline(self):
        specs = specs_for(["g-loadsharing"], indices=(1,))
        assert len(run_specs(specs, jobs=8)) == 1


class TestErrors:
    def test_worker_exception_carries_spec_serial(self):
        bad = RunSpec(group=WorkloadGroup.APP, trace_index=1,
                      policy="no-such-policy", seed=0, scale=SCALE)
        with pytest.raises(SweepError) as excinfo:
            run_specs([bad], jobs=1)
        assert excinfo.value.spec is bad
        assert "no-such-policy" in str(excinfo.value)

    def test_worker_exception_carries_spec_parallel(self):
        good = RunSpec(group=WorkloadGroup.APP, trace_index=1,
                       policy="g-loadsharing", seed=0, scale=SCALE)
        bad = RunSpec(group=WorkloadGroup.APP, trace_index=2,
                      policy="no-such-policy", seed=0, scale=SCALE)
        with pytest.raises(SweepError) as excinfo:
            run_specs([good, bad], jobs=2)
        assert excinfo.value.spec == bad
        assert "no-such-policy" in str(excinfo.value)

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_specs([], jobs=-1)

    def test_empty_specs(self):
        assert run_specs([], jobs=1) == []
        assert run_specs([], jobs=4) == []


class TestSpec:
    def test_describe_mentions_the_essentials(self):
        spec = RunSpec(group=WorkloadGroup.SPEC, trace_index=3,
                       policy="v-reconfiguration", seed=7, scale=0.25,
                       policy_kwargs={"max_reserved": 2})
        text = spec.describe()
        assert "spec-trace-3" in text
        assert "v-reconfiguration" in text
        assert "seed=7" in text
        assert "max_reserved" in text

    def test_spec_is_picklable(self):
        import pickle

        spec = RunSpec(group=WorkloadGroup.APP, trace_index=2,
                       policy="memory", seed=1, scale=0.5,
                       policy_kwargs={"x": 1}, label="tag")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
