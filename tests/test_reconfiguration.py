"""Integration tests for the V-Reconfiguration policy (§2.1)."""

import pytest

from repro.core.reconfiguration import VReconfiguration
from repro.core.reservation import ReservationMode, ReservationState

from helpers import drive, job, tiny_cluster


def vpolicy(cluster, **kwargs):
    defaults = dict(blocking_persistence=1, reservation_backoff_s=0.0,
                    migration_cooldown_s=0.0,
                    min_remaining_for_migration_s=1.0)
    defaults.update(kwargs)
    return VReconfiguration(cluster, **defaults)


def build_blocked_cluster(num_nodes=3, cpu_threshold=2):
    """Node 0 wedged by a hog; all other nodes slot-full with small
    long-running jobs, so no qualified destination exists, while their
    idle memory accumulates (the paper's blocking geometry)."""
    cluster = tiny_cluster(num_nodes=num_nodes, memory_mb=100.0,
                           cpu_threshold=cpu_threshold,
                           network_bandwidth_mbps=1000.0)
    policy = vpolicy(cluster)
    hog = job(work=400.0, demand=90.0)
    small = job(work=400.0, demand=60.0)
    cluster.nodes[0].add_job(hog)
    cluster.nodes[0].add_job(small)
    fillers = []
    for node_id in range(1, num_nodes):
        for _ in range(cpu_threshold):
            filler = job(work=100.0, demand=10.0)
            cluster.nodes[node_id].add_job(filler)
            fillers.append(filler)
    return cluster, policy, hog, small, fillers


class TestReconfigurationFlow:
    def test_blocking_triggers_reservation(self):
        cluster, policy, hog, _, _ = build_blocked_cluster()
        cluster.sim.run(until=10.0)
        assert policy.stats.extra.get("reservations", 0) >= 1
        assert len(cluster.reserved_nodes()) >= 1

    def test_hog_eventually_migrates_to_reserved_node(self):
        cluster, policy, hog, _, fillers = build_blocked_cluster()
        # two fillers share a node's CPU, so the drain ends near t=200
        cluster.sim.run(until=280.0)
        # fillers on the reserved node completed -> ready -> the hog
        # (largest demand, faulting) moved there
        assert policy.stats.extra.get("reconfiguration_migrations", 0) >= 1
        assert hog.migrations == 1
        assert hog.node_id in (1, 2)

    def test_source_node_recovers_after_rescue(self):
        cluster, policy, hog, small, _ = build_blocked_cluster()
        cluster.sim.run(until=320.0)
        assert not cluster.nodes[0].thrashing

    def test_reservation_released_after_hog_completes(self):
        cluster, policy, hog, _, _ = build_blocked_cluster()
        cluster.sim.run()
        assert hog.finished
        assert cluster.reserved_nodes() == []
        released = [r for r in policy.reservations.history
                    if r.state is ReservationState.RELEASED]
        assert len(released) >= 1

    def test_all_jobs_finish(self):
        cluster, policy, hog, small, fillers = build_blocked_cluster()
        cluster.sim.run()
        assert hog.finished and small.finished
        assert all(f.finished for f in fillers)

    def test_timeline_is_exposed(self):
        cluster, policy, _, _, _ = build_blocked_cluster()
        cluster.sim.run(until=280.0)
        kinds = {event.kind for event in policy.reservation_timeline}
        assert "reserve" in kinds
        assert "assign" in kinds


class TestAdaptiveness:
    def test_no_reservation_without_blocking(self):
        cluster = tiny_cluster(num_nodes=3, memory_mb=100.0)
        policy = vpolicy(cluster)
        jobs = [job(work=50.0, demand=20.0, home=i) for i in range(3)]
        drive(policy, jobs)
        cluster.sim.run()
        assert policy.stats.extra.get("reservations", 0) == 0

    def test_activation_requires_accumulated_idle_memory(self):
        """§2.3: when accumulated idle memory is below the average user
        memory of a workstation, reconfiguration must not activate."""
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0,
                               cpu_threshold=3)
        policy = vpolicy(cluster)
        # both nodes memory-saturated: idle ~0 everywhere
        for node_id in range(2):
            cluster.nodes[node_id].add_job(job(work=300.0, demand=60.0))
            cluster.nodes[node_id].add_job(job(work=300.0, demand=60.0))
        cluster.sim.run(until=20.0)
        assert policy.stats.extra.get("reservations", 0) == 0
        assert policy.stats.extra.get("activation_skipped", 0) >= 1

    def test_reservation_cancelled_when_blocking_disappears(self):
        cluster, policy, hog, small, _ = build_blocked_cluster()
        # before any filler finishes, the wedge resolves by itself:
        # remove the small job so node 0 stops thrashing
        def resolve():
            if small.node_id == 0:
                cluster.nodes[0].remove_job(small)
                cluster.nodes[2].remove_job  # no-op reference
                small.state = small.state  # keep job parked off-node
        cluster.sim.schedule(5.0, resolve)
        cluster.sim.run(until=120.0)
        cancelled = [r for r in policy.reservations.history
                     if r.state is ReservationState.CANCELLED]
        # the reserving period observed no remaining blocking -> cancel
        assert cancelled or policy.stats.extra.get(
            "reconfiguration_migrations", 0) == 0

    def test_wedges_resolve_and_largest_job_is_chosen(self):
        """Two wedged nodes: the reconfiguration serves the *most
        memory-intensive* faulting job, and the remaining wedge heals
        through normal load sharing once capacity frees up."""
        cluster = tiny_cluster(num_nodes=4, memory_mb=300.0,
                               cpu_threshold=2,
                               network_bandwidth_mbps=1000.0)
        policy = vpolicy(cluster, max_reserved=2)
        bigs = []
        for node_id in (0, 1):
            medium = job(work=400.0, demand=130.0)
            big = job(work=400.0, demand=260.0)
            cluster.nodes[node_id].add_job(big)
            cluster.nodes[node_id].add_job(medium)
            bigs.append(big)
        for node_id in (2, 3):
            for _ in range(2):
                cluster.nodes[node_id].add_job(job(work=60.0, demand=10.0))
        cluster.sim.run(until=300.0)
        rescues = policy.stats.extra.get("reconfiguration_migrations", 0)
        assert rescues >= 1
        # the rescued job is one of the 260MB jobs (largest demand)
        assigned = [e.job_id for e in policy.reservation_timeline
                    if e.kind == "assign"]
        assert set(assigned) <= {big.job_id for big in bigs}
        # both wedges resolved one way or another
        assert not cluster.nodes[0].thrashing
        assert not cluster.nodes[1].thrashing


class TestModes:
    def test_first_fit_mode_serves_sooner(self):
        def run_with(mode):
            cluster, policy, hog, _, _ = build_blocked_cluster()
            policy.reservations.mode = mode
            cluster.sim.run(until=400.0)
            timeline = [e for e in policy.reservation_timeline
                        if e.kind == "assign"]
            return timeline[0].time if timeline else float("inf")

        drain = run_with(ReservationMode.DRAIN_ALL)
        first_fit = run_with(ReservationMode.FIRST_FIT)
        assert first_fit <= drain
