"""Unit tests for trace containers, the on-disk format, and the generator."""

import io

import pytest

from repro.workload import (
    Trace,
    TraceGenerator,
    TraceJob,
    WorkloadGroup,
    build_trace,
)
from repro.workload.generator import program_mix
from repro.workload.trace import RECORD_INTERVAL_MS, summarize


def make_trace_job(index=0, submit=1.0, program="gzip", lifetime=290.0,
                   **kwargs):
    defaults = dict(home_node=3, peak_demand_mb=180.0,
                    io_stall_per_cpu_s=0.0,
                    memory_phases=[(0.0, 90.0), (30.0, 180.0)])
    defaults.update(kwargs)
    return TraceJob(job_index=index, submit_time=submit, program=program,
                    lifetime_s=lifetime, **defaults)


class TestTraceJob:
    def test_to_job_materializes_fields(self):
        tj = make_trace_job()
        job = tj.to_job()
        assert job.program == "gzip"
        assert job.cpu_work_s == 290.0
        assert job.submit_time == 1.0
        assert job.home_node == 3
        assert job.current_demand_mb == 90.0
        assert job.peak_demand_mb == 180.0

    def test_default_phase_is_flat_peak(self):
        tj = TraceJob(job_index=0, submit_time=0.0, program="p",
                      lifetime_s=10.0, home_node=0, peak_demand_mb=42.0)
        assert tj.memory_phases == [(0.0, 42.0)]

    def test_activity_records_expand_to_10ms_grid(self):
        tj = make_trace_job(lifetime=0.05)  # 50 ms -> 5 records
        records = list(tj.activity_records())
        assert len(records) == 5
        assert records[1].offset_ms == RECORD_INTERVAL_MS
        assert all(r.memory_mb == 90.0 for r in records)

    def test_activity_records_follow_phases(self):
        tj = make_trace_job(lifetime=60.0)
        records = list(tj.activity_records())
        assert records[0].memory_mb == 90.0
        assert records[-1].memory_mb == 180.0

    def test_invalid_lifetime(self):
        with pytest.raises(ValueError):
            make_trace_job(lifetime=0.0)


class TestTraceRoundTrip:
    def build(self):
        jobs = [make_trace_job(index=i, submit=float(i)) for i in range(4)]
        return Trace(name="SPEC-Trace-9", group=WorkloadGroup.SPEC,
                     trace_index=9, duration_s=100.0, jobs=jobs)

    def test_round_trip_through_string(self):
        trace = self.build()
        text = trace.dumps()
        loaded = Trace.read(io.StringIO(text))
        assert loaded.name == trace.name
        assert loaded.group == trace.group
        assert loaded.trace_index == 9
        assert loaded.num_jobs == 4
        for a, b in zip(trace.jobs, loaded.jobs):
            assert a.submit_time == pytest.approx(b.submit_time)
            assert a.program == b.program
            assert a.memory_phases == pytest.approx(b.memory_phases)

    def test_round_trip_through_file(self, tmp_path):
        trace = self.build()
        path = str(tmp_path / "trace.txt")
        trace.write(path)
        loaded = Trace.read(path)
        assert loaded.num_jobs == trace.num_jobs

    def test_rejects_non_trace_file(self):
        with pytest.raises(ValueError):
            Trace.read(io.StringIO("not a trace\n"))

    def test_rejects_unknown_line(self):
        text = self.build().dumps() + "X bogus\n"
        with pytest.raises(ValueError):
            Trace.read(io.StringIO(text))

    def test_unsorted_jobs_rejected(self):
        jobs = [make_trace_job(index=0, submit=5.0),
                make_trace_job(index=1, submit=1.0)]
        with pytest.raises(ValueError):
            Trace(name="bad", group=WorkloadGroup.SPEC, trace_index=1,
                  duration_s=10.0, jobs=jobs)

    def test_summarize(self):
        text = summarize(self.build())
        assert "SPEC-Trace-9" in text
        assert "4 jobs" in text


class TestGenerator:
    def test_builds_published_job_counts(self):
        trace = build_trace(WorkloadGroup.SPEC, 3, seed=0)
        assert trace.name == "SPEC-Trace-3"
        assert trace.num_jobs == 578

    def test_app_traces(self):
        trace = build_trace(WorkloadGroup.APP, 1, seed=0)
        assert trace.name == "App-Trace-1"
        assert trace.num_jobs == 359

    def test_deterministic_for_same_seed(self):
        a = build_trace(WorkloadGroup.SPEC, 2, seed=5)
        b = build_trace(WorkloadGroup.SPEC, 2, seed=5)
        assert a.dumps() == b.dumps()

    def test_different_seeds_differ(self):
        a = build_trace(WorkloadGroup.SPEC, 2, seed=5)
        b = build_trace(WorkloadGroup.SPEC, 2, seed=6)
        assert a.dumps() != b.dumps()

    def test_home_nodes_in_range(self):
        trace = build_trace(WorkloadGroup.APP, 2, seed=0, num_nodes=32)
        assert all(0 <= job.home_node < 32 for job in trace.jobs)

    def test_all_programs_appear(self):
        trace = build_trace(WorkloadGroup.SPEC, 5, seed=0)
        mix = program_mix(trace)
        assert set(mix) == {"apsi", "gcc", "gzip", "mcf", "vortex", "bzip"}

    def test_jitter_bounds(self):
        gen = TraceGenerator(seed=1, lifetime_jitter=0.10,
                             working_set_jitter=0.05)
        trace = gen.build(WorkloadGroup.SPEC, 1)
        from repro.workload.programs import program_by_name
        for job in trace.jobs:
            program = program_by_name(job.program)
            assert (0.89 * program.lifetime_s <= job.lifetime_s
                    <= 1.11 * program.lifetime_s)

    def test_generated_trace_round_trips(self):
        trace = build_trace(WorkloadGroup.APP, 1, seed=3)
        loaded = Trace.read(io.StringIO(trace.dumps()))
        assert loaded.num_jobs == trace.num_jobs
        assert loaded.jobs[10].program == trace.jobs[10].program

    def test_invalid_generator_parameters(self):
        with pytest.raises(ValueError):
            TraceGenerator(num_nodes=0)
        with pytest.raises(ValueError):
            TraceGenerator(lifetime_jitter=1.5)
        with pytest.raises(ValueError):
            TraceGenerator(working_set_jitter=-0.1)
