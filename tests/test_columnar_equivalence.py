"""The columnar (SoA) state layer is a pure optimization — pinned here.

``columnar=True`` (the default) keeps every per-node hot quantity in a
contiguous column of :class:`~repro.cluster.state.ClusterState` and
lets batch consumers (metrics collector, obs sampler, load directory,
cluster-wide queries) read columns instead of walking node objects;
``columnar=False`` is the per-object escape hatch.  For every policy,
both paths must produce an *identical* :class:`RunSummary` — same
placements, migrations, timings — in the periodic and live staleness
regimes, at larger sizes, and across random (seed, nodes, policy)
triples.  Any divergence means the SoA layer changed scheduling
decisions, not just their cost.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.runner import default_config, run_experiment
from repro.obs.sampler import ClusterSampler
from repro.obs.session import ObsSession
from repro.workload.programs import WorkloadGroup

#: Every policy the repo ships — all must be columnar-agnostic.
POLICIES = ["cpu", "memory", "g-loadsharing", "v-reconfiguration",
            "suspension"]


def summary_for(policy, columnar, interval=None, seed=0, nodes=None,
                scale=0.1):
    cfg = default_config(WorkloadGroup.SPEC).replace(columnar=columnar)
    if interval is not None:
        cfg = cfg.replace(load_exchange_interval_s=interval)
    result = run_experiment(WorkloadGroup.SPEC, 3, policy=policy,
                            seed=seed, scale=scale, config=cfg,
                            nodes=nodes)
    return result.summary, result.cluster.sim.event_count


@pytest.mark.parametrize("policy", POLICIES)
def test_columnar_matches_legacy_periodic(policy):
    columnar, columnar_events = summary_for(policy, True)
    legacy, legacy_events = summary_for(policy, False)
    assert columnar == legacy
    assert columnar_events == legacy_events


@pytest.mark.parametrize("policy", ["g-loadsharing", "memory", "cpu"])
def test_columnar_matches_legacy_live(policy):
    """Live mode (interval 0) repositions per node change instead of
    per exchange round — still byte-identical."""
    columnar, columnar_events = summary_for(policy, True, interval=0.0)
    legacy, legacy_events = summary_for(policy, False, interval=0.0)
    assert columnar == legacy
    assert columnar_events == legacy_events


def test_larger_cluster_equivalence():
    """The 256-node scale-bench differential is valid only if both
    paths agree beyond the default topology too (smaller stand-in
    keeps the test suite fast)."""
    columnar, _ = summary_for("memory", True, nodes=96)
    legacy, _ = summary_for("memory", False, nodes=96)
    assert columnar == legacy


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=7),
       nodes=st.integers(min_value=4, max_value=48),
       policy=st.sampled_from(POLICIES))
def test_columnar_matches_legacy_random(seed, nodes, policy):
    """Differential fuzz: random (seed, nodes, policy) triples run on
    both paths and must agree on the full summary and event count."""
    columnar, columnar_events = summary_for(policy, True, seed=seed,
                                            nodes=nodes, scale=0.05)
    legacy, legacy_events = summary_for(policy, False, seed=seed,
                                        nodes=nodes, scale=0.05)
    assert columnar == legacy
    assert columnar_events == legacy_events


# ----------------------------------------------------------------------
# obs sampler reads columns, not node objects
# ----------------------------------------------------------------------
class _TrapNode:
    """Stand-in node that fails the test on any attribute access."""

    def __getattr__(self, name):
        raise AssertionError(
            f"sampler touched node attribute {name!r}; the columnar "
            f"sample path must read ClusterState columns only")


def test_sampler_columnar_path_reads_no_node_attributes():
    """With the columnar state attached, ``ClusterSampler.sample``
    must complete without a single per-node Python attribute access."""
    result = run_experiment(WorkloadGroup.SPEC, 3, policy="memory",
                            seed=0, scale=0.1)
    cluster = result.cluster
    assert cluster.state is not None
    sampler = ClusterSampler(cluster, period_s=10.0)
    cluster.nodes = [_TrapNode() for _ in range(cluster.num_nodes)]
    sampler.sample()
    assert sampler.num_samples == 1
    assert len(sampler.series["running"]) == cluster.num_nodes


def test_sampler_rows_identical_across_modes():
    """Both sample paths append the same rows: the columns hold the
    node property values bit-for-bit and the flag packing matches."""
    rows = {}
    for columnar in (True, False):
        obs = ObsSession(record_events=False, sample_period=10.0)
        cfg = default_config(WorkloadGroup.SPEC).replace(
            columnar=columnar)
        run_experiment(WorkloadGroup.SPEC, 3, policy="memory", seed=0,
                       scale=0.1, config=cfg, obs=obs)
        sampler = obs.sampler
        rows[columnar] = (list(sampler.times),
                          {k: list(v) for k, v in sampler.series.items()},
                          bytes(sampler.flags))
    assert rows[True] == rows[False]


# ----------------------------------------------------------------------
# recompute-skip accounting agrees across modes
# ----------------------------------------------------------------------
def test_recompute_counters_agree_across_modes():
    """The recompute/skip split is an input-driven property of the
    run, not of the storage layout: both modes must count the same,
    and the counters must surface in the obs snapshot."""
    counters = {}
    for columnar in (True, False):
        obs = ObsSession(record_events=False)
        cfg = default_config(WorkloadGroup.SPEC).replace(
            columnar=columnar)
        run_experiment(WorkloadGroup.SPEC, 3, policy="memory", seed=0,
                       scale=0.1, config=cfg, obs=obs)
        snapshot = obs.finalize()
        counters[columnar] = (snapshot["workstation_recomputes"],
                              snapshot["workstation_recompute_skips"])
    assert counters[True] == counters[False]
    assert counters[True][0] > 0


@pytest.mark.parametrize("columnar", [True, False])
def test_recompute_short_circuits_on_identical_inputs(columnar):
    """A recompute whose inputs (liveness, demand vector, dedicated
    flags) match the previous one is skipped in both modes; the skip
    still notifies listeners, so downstream consumers (directory,
    collector dirty flag) behave exactly as before."""
    from repro.cluster.cluster import Cluster
    from repro.cluster.config import ClusterConfig, WorkstationSpec
    from repro.cluster.job import Job, MemoryProfile

    cfg = ClusterConfig(num_nodes=1, columnar=columnar,
                        spec=WorkstationSpec(memory_mb=384.0,
                                             swap_mb=384.0),
                        kernel_reserved_mb=0.0)
    cluster = Cluster(cfg)
    node = cluster.nodes[0]
    job = Job(program="steady", cpu_work_s=100.0,
              memory=MemoryProfile.constant(50.0))
    node.add_job(job)
    recomputes = node.recomputes
    notified = []
    node.add_change_listener(lambda n: notified.append(n.node_id))
    # Constant demand and no progress boundary crossed: identical key.
    node._recompute()
    assert node.recomputes == recomputes
    assert node.recompute_skips == 1
    assert notified == [0]
    # A real change (job removed) recomputes again.
    node.remove_job(job)
    assert node.recomputes == recomputes + 1
    assert node.recompute_skips == 1
