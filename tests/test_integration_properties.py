"""Property-based end-to-end invariants of the whole stack.

Random small workloads are replayed under every policy; the invariants
below must hold regardless of workload shape:

* conservation — every submitted job finishes exactly once;
* the §5 wall-clock identity per job;
* memory sanity — no negative idle memory reading;
* reservations — never the whole cluster, always released by drain;
* determinism — identical runs produce identical results.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import Cluster, ClusterConfig, Job, MemoryProfile
from repro.cluster.config import WorkstationSpec
from repro.core import VReconfiguration
from repro.scheduling import GLoadSharing, LocalPolicy, SuspensionPolicy

POLICIES = (LocalPolicy, GLoadSharing, SuspensionPolicy,
            VReconfiguration)

job_strategy = st.fixed_dictionaries({
    "work": st.floats(min_value=1.0, max_value=200.0),
    "demand": st.floats(min_value=1.0, max_value=150.0),
    "grow_to": st.floats(min_value=0.0, max_value=100.0),
    "home": st.integers(min_value=0, max_value=3),
    "submit": st.floats(min_value=0.0, max_value=100.0),
    "io": st.floats(min_value=0.0, max_value=0.5),
})

workload_strategy = st.lists(job_strategy, min_size=1, max_size=14)


def build_jobs(specs):
    jobs = []
    for spec in specs:
        demand = spec["demand"]
        peak = demand + spec["grow_to"]
        if spec["grow_to"] > 0 and spec["work"] > 2.0:
            profile = MemoryProfile.from_pairs(
                [(0.0, demand), (spec["work"] / 3.0, peak)])
        else:
            profile = MemoryProfile.constant(demand)
        jobs.append(Job(program="prop", cpu_work_s=spec["work"],
                        memory=profile, submit_time=spec["submit"],
                        home_node=spec["home"],
                        io_stall_per_cpu_s=spec["io"]))
    return jobs


def run_workload(policy_class, specs):
    config = ClusterConfig(
        num_nodes=4,
        spec=WorkstationSpec(memory_mb=128.0, swap_mb=128.0),
        cpu_threshold=3,
        monitor_interval_s=0.5,
    )
    cluster = Cluster(config)
    policy = policy_class(cluster)
    jobs = build_jobs(specs)
    for job in jobs:
        cluster.sim.schedule_at(job.submit_time,
                                lambda job=job: policy.submit(job))
    cluster.sim.run()
    return cluster, policy, jobs


@pytest.mark.parametrize("policy_class", POLICIES,
                         ids=lambda c: c.name)
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(specs=workload_strategy)
def test_conservation_and_identity(policy_class, specs):
    cluster, policy, jobs = run_workload(policy_class, specs)
    # every job finished exactly once
    assert len(cluster.finished_jobs) == len(jobs)
    assert {j.job_id for j in cluster.finished_jobs} == \
        {j.job_id for j in jobs}
    for job in jobs:
        assert job.finished
        wall = job.finish_time - job.submit_time
        acct = (job.acct.cpu_s + job.acct.page_s + job.acct.io_s
                + job.acct.queue_s + job.acct.migration_s)
        assert acct == pytest.approx(wall, rel=1e-6, abs=1e-6)
        # CPU time equals the job's work (homogeneous speed 1)
        assert job.acct.cpu_s == pytest.approx(job.cpu_work_s,
                                               rel=1e-6)
        assert job.slowdown() >= 1.0 - 1e-9
    # nothing still reserved or pending
    assert cluster.reserved_nodes() == []
    assert policy.pending_jobs == []


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(specs=workload_strategy)
def test_idle_memory_never_negative(specs):
    cluster, policy, jobs = run_workload(GLoadSharing, specs)
    for node in cluster.nodes:
        assert node.idle_memory_mb >= 0.0


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(specs=workload_strategy)
def test_determinism(specs):
    _, _, jobs_a = run_workload(VReconfiguration, specs)
    _, _, jobs_b = run_workload(VReconfiguration, specs)
    finishes_a = sorted(j.finish_time for j in jobs_a)
    finishes_b = sorted(j.finish_time for j in jobs_b)
    assert finishes_a == finishes_b


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(specs=workload_strategy)
def test_reservations_bounded_and_closed(specs):
    cluster, policy, _ = run_workload(VReconfiguration, specs)
    manager = policy.reservations
    # never allowed to reserve the whole cluster
    assert manager.max_reserved < cluster.num_nodes
    # every reservation in history reached a terminal state
    for reservation in manager.history:
        assert reservation.state.value in ("released", "cancelled")
        assert not reservation.node.reserved or \
            manager.reservation_for_node(reservation.node.node_id)
