"""Unit tests for the heterogeneous-cluster experiments (paper §2.3/§6)."""

import pytest

from repro.experiments.heterogeneity import (
    heterogeneous_config,
    run_heterogeneity_experiment,
)
from repro.workload.programs import WorkloadGroup


class TestHeterogeneousConfig:
    def test_capacity_neutrality(self):
        config = heterogeneous_config(WorkloadGroup.APP,
                                      big_fraction=0.25,
                                      memory_ratio=2.0,
                                      speed_ratio=1.5)
        from repro.experiments.runner import default_config
        base = default_config(WorkloadGroup.APP)
        total_mem = sum(config.spec_for(i).memory_mb
                        for i in range(config.num_nodes))
        total_speed = sum(config.spec_for(i).speed_factor
                          for i in range(config.num_nodes))
        assert total_mem == pytest.approx(
            base.spec.memory_mb * base.num_nodes, rel=1e-6)
        assert total_speed == pytest.approx(
            base.spec.speed_factor * base.num_nodes, rel=1e-6)

    def test_big_nodes_are_bigger(self):
        config = heterogeneous_config(WorkloadGroup.SPEC)
        big_ids = sorted(config.node_overrides)
        assert big_ids  # some overrides exist
        small = config.spec_for(0)
        big = config.spec_for(big_ids[0])
        assert big.memory_mb > small.memory_mb
        assert big.speed_factor > small.speed_factor

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            heterogeneous_config(WorkloadGroup.APP, big_fraction=0.0)
        with pytest.raises(ValueError):
            heterogeneous_config(WorkloadGroup.APP, big_fraction=0.5,
                                 memory_ratio=2.0)  # small nodes <= 0


class TestHeterogeneityExperiment:
    def test_report_structure(self):
        report = run_heterogeneity_experiment(
            group=WorkloadGroup.APP, trace_index=1, scale=0.08)
        assert len(report.rows) == 4  # 2 clusters x 2 policies
        labels = {row["cluster"] for row in report.rows}
        assert labels == {"homogeneous", "heterogeneous"}
        text = report.render()
        assert "Heterogeneity" in text

    def test_all_variants_drain(self):
        report = run_heterogeneity_experiment(
            group=WorkloadGroup.APP, trace_index=1, scale=0.08)
        for row in report.rows:
            assert row["exec (s)"] > 0
            # jobs on the 1.5x-speed nodes can beat their reference
            # lifetime, so heterogeneous slowdowns may dip below 1
            assert row["slowdown"] > 0.5
            if row["cluster"] == "homogeneous":
                assert row["slowdown"] >= 1.0

    def test_reservation_preference_field(self):
        report = run_heterogeneity_experiment(
            group=WorkloadGroup.APP, trace_index=1, scale=0.08)
        # either no reservations (None) or a boolean verdict
        assert report.reservations_prefer_big_nodes in (None, True, False)
