"""Tests for the topology study (slowdown vs. domains vs. staleness).

Small grids only — the full sweeps are exercised by the CLI and CI's
report step; here we pin the report structure, the flat-baseline
backfill, and the blocking-mode dispatch.
"""

from repro.experiments.topology import (
    TopologyReport,
    run_topology_experiment,
)
from repro.workload.programs import WorkloadGroup

DOMAINS = (1, 2)
STALENESS = (0.0, 5.0)


def trace_report(**kwargs) -> TopologyReport:
    defaults = dict(group=WorkloadGroup.SPEC, trace_index=3, seed=0,
                    scale=0.05, nodes=16, domains_grid=DOMAINS,
                    staleness_grid=STALENESS)
    defaults.update(kwargs)
    return run_topology_experiment(**defaults)


class TestTraceSweep:
    def test_grid_is_fully_populated(self):
        report = trace_report()
        assert not report.blocking
        assert report.nodes == 16
        assert set(report.summaries) == {
            (d, s) for d in DOMAINS for s in STALENESS}

    def test_flat_baseline_backfilled_across_staleness(self):
        """domains=1 has no summaries, so one run fills every
        staleness column with the identical summary object."""
        report = trace_report()
        assert report.summaries[(1, 0.0)] is report.summaries[(1, 5.0)]

    def test_rows_and_render(self):
        report = trace_report()
        rows = report.rows()
        assert [row["domains"] for row in rows] == list(DOMAINS)
        for row in rows:
            assert "slowdown s=0" in row
            assert "slowdown s=5" in row
            assert "migrations" in row
            assert "blocking" in row
            assert "xdomain reservations" in row
        rendered = report.render()
        assert "spec trace 3" in rendered
        assert "16 nodes" in rendered

    def test_comparison_rows_flatten_full_grid(self):
        report = trace_report()
        rows = report.comparison_rows()
        assert len(rows) == len(DOMAINS) * len(STALENESS)
        assert all("cross_domain_reservations" in row for row in rows)

    def test_write_report(self, tmp_path):
        report = trace_report()
        target = report.write_report(str(tmp_path / "topology.html"))
        html = open(target).read()
        assert "Topology study" in html
        assert "spec trace 3" in html


class TestBlockingSweep:
    def test_blocking_mode_dispatches_to_scenario(self):
        report = run_topology_experiment(
            seed=0, domains_grid=DOMAINS, staleness_grid=(0.0,),
            blocking=True)
        assert report.blocking
        assert report.nodes == 32  # the scenario's default topology
        assert set(report.summaries) == {(1, 0.0), (2, 0.0)}
        assert "constructed blocking scenario" in report.render()
        # The scenario wedges jobs hard enough to block even flat.
        assert report.summaries[(1, 0.0)].blocking_events > 0

    def test_blocking_baseline_backfilled(self):
        report = run_topology_experiment(
            seed=0, domains_grid=(1,), staleness_grid=STALENESS,
            blocking=True)
        assert report.summaries[(1, 0.0)] is report.summaries[(1, 5.0)]
