"""Reservation lifecycle under fault injection.

The reservation machinery is V-Reconfiguration's wedge against the
blocking problem, so its fault interplay gets its own edge-case suite:
a reserved workstation crashing mid-reserving-period must release the
reservation (or the policy wedges forever), a reservation whose only
inbound migration is abandoned must release, dead nodes must never be
chosen as reservation candidates, and the directory's incrementally
maintained candidate orders must keep matching the fresh-sort oracle
through arbitrary crash/recover interleavings (including recovery
between exchange rounds).
"""

import pytest
from hypothesis import given, settings, strategies as st

from helpers import job, tiny_cluster

from repro.cluster.job import JobState
from repro.core.reconfiguration import VReconfiguration
from repro.core.reservation import ReservationManager, ReservationState
from repro.faults import FaultConfig, FaultPlan, NodeOutage
from repro.scheduling import GLoadSharing


def outage_config(*outages, **overrides):
    defaults = dict(mtbf_s=None, plan=FaultPlan(tuple(outages)))
    defaults.update(overrides)
    return FaultConfig(**defaults)


# ----------------------------------------------------------------------
# reserved-node crash
# ----------------------------------------------------------------------
def test_reserved_node_crash_aborts_the_reservation():
    cluster = tiny_cluster(faults=outage_config(NodeOutage(1, 10.0, 30.0)))
    policy = GLoadSharing(cluster)
    manager = ReservationManager(cluster, max_reserved=1)
    occupant = job(work=500.0, demand=30.0, home=1)
    cluster.nodes[1].add_job(occupant)
    reservation = manager.reserve(cluster.nodes[1], needed_mb=50.0)
    assert reservation.state is ReservationState.RESERVING
    cluster.sim.run(until=15.0)
    # The crash aborted the reservation and freed the flag, so the
    # reconfiguration routine can re-trigger elsewhere.
    assert reservation.state is ReservationState.CANCELLED
    assert not cluster.nodes[1].reserved
    assert cluster.faults.counters["reservation_aborts"] == 1
    assert "crash-abort" in [e.kind for e in manager.timeline]
    # The occupant was requeued by the policy, not stranded.
    assert occupant.state in (JobState.RUNNING, JobState.PENDING,
                              JobState.MIGRATING)
    assert occupant.node_id != 1 or occupant.state is not JobState.RUNNING
    # After recovery the node is reservable again.
    cluster.sim.run(until=35.0)
    assert cluster.nodes[1].alive
    again = manager.reserve(cluster.nodes[1], needed_mb=10.0)
    assert again.active


def test_crash_on_unreserved_node_reports_no_abort():
    cluster = tiny_cluster(faults=outage_config(NodeOutage(2, 5.0, 10.0)))
    GLoadSharing(cluster)
    ReservationManager(cluster, max_reserved=1)
    cluster.sim.run(until=20.0)
    assert "reservation_aborts" not in cluster.faults.counters


# ----------------------------------------------------------------------
# abandoned inbound migration
# ----------------------------------------------------------------------
def test_abandoned_migration_releases_empty_reservation():
    cluster = tiny_cluster(
        network_bandwidth_mbps=1000.0,
        faults=FaultConfig(mtbf_s=None, migration_failure_prob=1.0,
                           migration_max_retries=0))
    policy = GLoadSharing(cluster)
    manager = ReservationManager(cluster, max_reserved=1)
    mover = job(work=500.0, demand=30.0, home=0)
    cluster.nodes[0].add_job(mover)
    reservation = manager.reserve(cluster.nodes[1], needed_mb=30.0)
    manager.assign(reservation, mover)
    assert reservation.state is ReservationState.SERVING
    mover.dedicated = True
    policy.migrate(
        mover, cluster.nodes[0], cluster.nodes[1],
        on_arrival=lambda j: manager.job_arrived(reservation, j),
        on_abandoned=lambda j: manager.migration_abandoned(reservation, j))
    cluster.sim.run(until=10.0)
    # The transfer failed outright; the reservation must not wait
    # forever for a job that fell back to its source.
    assert reservation.state is ReservationState.RELEASED
    assert not cluster.nodes[1].reserved
    assert not mover.dedicated
    assert mover.state is JobState.RUNNING
    assert mover.node_id == 0


# ----------------------------------------------------------------------
# zero live candidates
# ----------------------------------------------------------------------
def test_dead_nodes_are_never_reservation_candidates():
    cluster = tiny_cluster(faults=outage_config(
        NodeOutage(2, 1.0, None), NodeOutage(3, 1.0, None)))
    policy = VReconfiguration(cluster)
    cluster.sim.run(until=2.0)
    pick = policy._reserve_a_workstation(exclude=0, needed_mb=10.0)
    assert pick is cluster.nodes[1]
    cluster.nodes[1].crash()
    assert policy._reserve_a_workstation(exclude=0, needed_mb=10.0) is None


def test_blocking_with_zero_live_accepting_nodes_queues_not_crashes():
    # Every node except the overloaded home is dead: G-Loadsharing
    # finds no migration destination and V-Reconfiguration finds no
    # reservable workstation; newly submitted work just queues.
    cluster = tiny_cluster(num_nodes=3, faults=outage_config(
        NodeOutage(1, 1.0, 200.0), NodeOutage(2, 1.0, 200.0)))
    policy = VReconfiguration(cluster)
    cluster.sim.run(until=2.0)
    probe = job(work=5.0, demand=30.0, home=0)
    cluster.nodes[0].add_job(probe)
    assert policy.find_migration_destination(probe, exclude=0) is None
    for _ in range(3):  # past any persistence threshold
        policy.on_blocking(cluster.nodes[0], probe)
    assert policy.reservations.active_reservations == []
    overflow = [job(work=5.0, demand=30.0, home=0, submit=3.0)
                for _ in range(4)]
    for j in overflow:
        policy.submit(j)
    cluster.sim.run()
    assert all(j.state is JobState.FINISHED for j in overflow)


# ----------------------------------------------------------------------
# candidate orders through crash/recover interleavings
# ----------------------------------------------------------------------
NUM_NODES = 5

op_strategy = st.one_of(
    st.tuples(st.just("add"), st.integers(0, NUM_NODES - 1),
              st.floats(min_value=1.0, max_value=80.0)),
    st.tuples(st.just("remove"), st.integers(0, NUM_NODES - 1),
              st.integers(min_value=0, max_value=5)),
    st.tuples(st.just("crash"), st.integers(0, NUM_NODES - 1),
              st.just(None)),
    st.tuples(st.just("recover"), st.integers(0, NUM_NODES - 1),
              st.just(None)),
    st.tuples(st.just("advance"), st.integers(0, NUM_NODES - 1),
              st.floats(min_value=0.1, max_value=2.5)),
)


def apply_op(cluster, op):
    """One mutation, mirroring what the fault injector does on
    crash/recovery (immediate evict/readmit, not waiting for the next
    exchange round)."""
    kind, which, arg = op
    node = cluster.nodes[which]
    if kind == "add":
        if node.alive and node.has_free_slot:
            node.add_job(job(work=50.0, demand=arg, home=which))
    elif kind == "remove":
        if node.running_jobs:
            node.remove_job(node.running_jobs[arg % len(node.running_jobs)])
    elif kind == "crash":
        if node.alive:
            node.crash()
            cluster.directory.evict(which)
    elif kind == "recover":
        if not node.alive:
            node.recover()
            cluster.directory.readmit(which)
    elif kind == "advance":
        cluster.sim.run(until=cluster.sim.now + arg)


def assert_orders_match_oracle(cluster):
    directory = cluster.directory
    snaps = directory.snapshots()
    accepting = [s.node_id for s in sorted(
        (s for s in snaps if s.accepting),
        key=lambda s: (-s.idle_memory_mb, s.num_jobs, s.node_id))]
    load = [s.node_id for s in sorted(
        (s for s in snaps if s.alive),
        key=lambda s: (s.num_jobs, s.node_id))]
    assert directory.accepting_ids() == accepting
    assert directory.load_order_ids() == load
    alive_counts = [s.num_jobs for s in snaps if s.alive]
    assert directory.least_num_jobs() == (min(alive_counts)
                                          if alive_counts else 0)


@settings(max_examples=60, deadline=None)
@given(interval=st.sampled_from([0.0, 1.0]),
       ops=st.lists(op_strategy, min_size=1, max_size=25))
def test_orders_match_fresh_sort_through_crash_recover(interval, ops):
    cluster = tiny_cluster(num_nodes=NUM_NODES,
                           load_exchange_interval_s=interval)
    assert_orders_match_oracle(cluster)  # activate the orders up front
    for op in ops:
        apply_op(cluster, op)
        assert_orders_match_oracle(cluster)


@settings(max_examples=30, deadline=None)
@given(interval=st.sampled_from([0.0, 1.0]),
       ops=st.lists(op_strategy, min_size=1, max_size=25))
def test_orders_match_fresh_sort_on_late_activation_with_faults(
        interval, ops):
    """Recovery (and everything else) happening *before* the orders are
    first queried must still produce oracle-identical orders."""
    cluster = tiny_cluster(num_nodes=NUM_NODES,
                           load_exchange_interval_s=interval)
    for op in ops:
        apply_op(cluster, op)
    assert_orders_match_oracle(cluster)


def test_recovery_between_exchange_rounds_is_visible_immediately():
    # Periodic staleness regime: a node that recovers between rounds is
    # readmitted to the candidate orders at once (the injector calls
    # readmit), not at the next exchange tick.
    cluster = tiny_cluster(num_nodes=3, load_exchange_interval_s=1.0)
    cluster.sim.run(until=1.1)  # somewhere between rounds
    cluster.nodes[1].crash()
    cluster.directory.evict(1)
    assert 1 not in cluster.directory.accepting_ids()
    cluster.sim.run(until=1.5)  # still mid-round
    cluster.nodes[1].recover()
    cluster.directory.readmit(1)
    assert 1 in cluster.directory.accepting_ids()
    assert 1 in cluster.directory.load_order_ids()
    assert cluster.directory.snapshot(1).alive
    assert_orders_match_oracle(cluster)


def test_manager_binds_to_injector_only_when_faults_enabled():
    plain = tiny_cluster()
    assert plain.faults is None
    ReservationManager(plain, max_reserved=1)  # must not blow up
    faulty = tiny_cluster(faults=FaultConfig(mtbf_s=None))
    manager = ReservationManager(faulty, max_reserved=1)
    assert faulty.faults.reservation_manager is manager


def test_reservation_manager_still_validates_limits():
    cluster = tiny_cluster(faults=FaultConfig(mtbf_s=None))
    with pytest.raises(ValueError):
        ReservationManager(cluster, max_reserved=0)
