"""Unit tests for the program catalogs (Tables 1 and 2)."""

import pytest

from repro.workload.programs import (
    APP_PROGRAMS,
    DEFAULT_SHAPE,
    SPEC_PROGRAMS,
    Program,
    WorkloadGroup,
    catalog_table,
    program_by_name,
    programs_for_group,
)


class TestCatalogs:
    def test_table1_has_the_six_spec_programs(self):
        names = {p.name for p in SPEC_PROGRAMS}
        assert names == {"apsi", "gcc", "gzip", "mcf", "vortex", "bzip"}

    def test_table2_has_the_seven_app_programs(self):
        names = {p.name for p in APP_PROGRAMS}
        assert names == {"bit-r", "m-sort", "m-m", "t-sim", "metis",
                         "r-sphere", "r-wing"}

    def test_apsi_lifetime_matches_legible_table_value(self):
        assert program_by_name("apsi").lifetime_s == 2619.0

    def test_spec_programs_fit_cluster1_memory(self):
        # Every SPEC working set fits a dedicated 384 MB node (profiling
        # ran without major page faults, §3.2).
        assert all(p.working_set_mb < 384.0 for p in SPEC_PROGRAMS)

    def test_app_programs_fit_cluster2_memory(self):
        assert all(p.working_set_mb < 128.0 for p in APP_PROGRAMS)

    def test_blocking_precondition_group1(self):
        """Some pairs of SPEC programs must not coexist in one node's
        user memory — otherwise the blocking problem cannot arise."""
        user_memory = 384.0 - 8.0
        peaks = sorted((p.working_set_mb for p in SPEC_PROGRAMS),
                       reverse=True)
        assert peaks[0] + peaks[1] > user_memory

    def test_blocking_precondition_group2(self):
        user_memory = 128.0 - 8.0
        peaks = sorted((p.working_set_mb for p in APP_PROGRAMS),
                       reverse=True)
        assert peaks[0] + peaks[1] > user_memory

    def test_group2_has_io_active_programs(self):
        assert any(p.io_stall_per_cpu_s > 0 for p in APP_PROGRAMS)

    def test_group1_is_cpu_memory_only(self):
        assert all(p.io_stall_per_cpu_s == 0 for p in SPEC_PROGRAMS)

    def test_programs_for_group(self):
        assert programs_for_group(WorkloadGroup.SPEC) == SPEC_PROGRAMS
        assert programs_for_group(WorkloadGroup.APP) == APP_PROGRAMS

    def test_program_by_name_unknown(self):
        with pytest.raises(KeyError):
            program_by_name("quake")

    def test_catalog_table_rows(self):
        rows = catalog_table(WorkloadGroup.SPEC)
        assert len(rows) == 6
        assert rows[0][0] == "apsi"
        # ranged working sets render as "lo-hi"
        app_rows = {row[0]: row for row in catalog_table(WorkloadGroup.APP)}
        assert "-" in app_rows["t-sim"][3]


class TestMemoryProfiles:
    def test_profile_peaks_at_requested_working_set(self):
        program = program_by_name("apsi")
        profile = program.memory_profile(lifetime_s=2619.0, peak_mb=191.0)
        assert profile.peak_demand_mb == pytest.approx(191.0)

    def test_profile_respects_minimum_working_set(self):
        program = program_by_name("t-sim")
        profile = program.memory_profile(lifetime_s=145.0, peak_mb=75.0)
        for phase in profile.phases:
            assert phase.demand_mb >= program.working_set_min_mb

    def test_profile_phases_span_lifetime(self):
        program = program_by_name("gzip")
        profile = program.memory_profile(lifetime_s=290.0, peak_mb=180.0)
        assert profile.phases[0].start_progress == 0.0
        assert profile.phases[-1].start_progress < 290.0

    def test_degenerate_lifetime_still_valid(self):
        program = program_by_name("bit-r")
        profile = program.memory_profile(lifetime_s=1e-6, peak_mb=9.0)
        assert len(profile.phases) >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Program(name="x", group=WorkloadGroup.SPEC, description="",
                    input_name="", working_set_mb=0.0, lifetime_s=1.0)
        with pytest.raises(ValueError):
            Program(name="x", group=WorkloadGroup.SPEC, description="",
                    input_name="", working_set_mb=1.0, lifetime_s=0.0)
        with pytest.raises(ValueError):
            Program(name="x", group=WorkloadGroup.SPEC, description="",
                    input_name="", working_set_mb=1.0, lifetime_s=1.0,
                    shape=((0.5, 1.0),))

    def test_default_shape_monotone_starts(self):
        starts = [s for s, _ in DEFAULT_SHAPE]
        assert starts == sorted(starts)
