"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Process, Simulator, SimulationError
from repro.sim.process import Interrupt


def test_process_sleeps():
    sim = Simulator()
    times = []

    def body():
        times.append(sim.now)
        yield 1.5
        times.append(sim.now)
        yield 2.5
        times.append(sim.now)

    Process(sim, body())
    sim.run()
    assert times == [0.0, 1.5, 4.0]


def test_process_joins_other_process():
    sim = Simulator()
    order = []

    def worker():
        yield 5.0
        order.append(("worker-done", sim.now))

    def waiter(target):
        yield target
        order.append(("waiter-woke", sim.now))

    w = Process(sim, worker(), name="worker")
    Process(sim, waiter(w), name="waiter")
    sim.run()
    assert order == [("worker-done", 5.0), ("waiter-woke", 5.0)]


def test_joining_finished_process_resumes_immediately():
    sim = Simulator()
    woke = []

    def quick():
        yield 0.0

    def late_waiter(target):
        yield 3.0
        yield target
        woke.append(sim.now)

    q = Process(sim, quick())
    Process(sim, late_waiter(q))
    sim.run()
    assert woke == [3.0]


def test_interrupt_cancels_sleep():
    sim = Simulator()
    seen = []

    def sleeper():
        try:
            yield 100.0
        except Interrupt as exc:
            seen.append((sim.now, exc.cause))

    proc = Process(sim, sleeper())
    sim.schedule(2.0, lambda: proc.interrupt("stop"))
    sim.run()
    assert seen == [(2.0, "stop")]
    assert proc.finished


def test_uncaught_interrupt_terminates_process():
    sim = Simulator()

    def sleeper():
        yield 100.0

    proc = Process(sim, sleeper())
    sim.schedule(1.0, lambda: proc.interrupt())
    sim.run()
    assert proc.finished
    assert sim.now == 1.0


def test_interrupt_after_finish_is_noop():
    sim = Simulator()

    def quick():
        yield 0.0

    proc = Process(sim, quick())
    sim.run()
    assert proc.finished
    proc.interrupt()
    sim.run()


def test_invalid_yield_raises():
    sim = Simulator()

    def bad():
        yield "nonsense"

    Process(sim, bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_negative_sleep_raises():
    sim = Simulator()

    def bad():
        yield -1.0

    Process(sim, bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_multiple_waiters_all_wake():
    sim = Simulator()
    woke = []

    def worker():
        yield 2.0

    def waiter(target, tag):
        yield target
        woke.append(tag)

    w = Process(sim, worker())
    for tag in ("a", "b", "c"):
        Process(sim, waiter(w, tag))
    sim.run()
    assert sorted(woke) == ["a", "b", "c"]


def test_periodic_sampler_pattern():
    sim = Simulator()
    samples = []

    def sampler(interval, count):
        for _ in range(count):
            samples.append(sim.now)
            yield interval

    Process(sim, sampler(1.0, 5))
    sim.run()
    assert samples == [0.0, 1.0, 2.0, 3.0, 4.0]
