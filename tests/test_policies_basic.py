"""Unit tests for the baseline load-sharing policies."""

import pytest

from repro.cluster.job import JobState
from repro.scheduling import (
    CpuBasedPolicy,
    GLoadSharing,
    LocalPolicy,
    MemoryBasedPolicy,
)

from helpers import drive, job, tiny_cluster


class TestLocalPolicy:
    def test_jobs_run_on_home_node(self):
        cluster = tiny_cluster()
        policy = LocalPolicy(cluster)
        a = job(home=2, work=10.0)
        drive(policy, [a])
        cluster.sim.run(until=1.0)
        assert a.node_id == 2
        cluster.sim.run()
        assert a.finished

    def test_no_remote_submissions_ever(self):
        cluster = tiny_cluster()
        policy = LocalPolicy(cluster)
        jobs = [job(home=0, work=5.0, demand=10.0) for _ in range(6)]
        drive(policy, jobs)
        cluster.sim.run()
        assert policy.stats.remote_submissions == 0
        assert all(j.finished for j in jobs)

    def test_queues_beyond_cpu_threshold(self):
        cluster = tiny_cluster(cpu_threshold=2)
        policy = LocalPolicy(cluster)
        jobs = [job(home=0, work=10.0, demand=5.0) for _ in range(3)]
        drive(policy, jobs)
        cluster.sim.run(until=1.0)
        assert cluster.nodes[0].num_running == 2
        assert len(policy.pending_jobs) == 1
        cluster.sim.run()
        assert all(j.finished for j in jobs)
        # the queued job accrued pending time
        waited = [j for j in jobs if j.acct.pending_s > 0]
        assert len(waited) == 1


class TestCpuBasedPolicy:
    def test_balances_job_counts(self):
        cluster = tiny_cluster(num_nodes=4)
        policy = CpuBasedPolicy(cluster)
        jobs = [job(home=0, work=50.0, demand=1.0, submit=0.1 * i)
                for i in range(4)]
        drive(policy, jobs)
        cluster.sim.run(until=2.0)
        counts = [node.num_running for node in cluster.nodes]
        assert counts == [1, 1, 1, 1]

    def test_ignores_memory_pressure(self):
        # one node thrashing but with the fewest jobs still attracts work
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0)
        policy = CpuBasedPolicy(cluster)
        hog = job(home=0, work=100.0, demand=150.0)
        drive(policy, [hog])
        cluster.sim.run(until=1.0)
        newcomer = job(home=1, work=100.0, demand=10.0, submit=0.0)
        cluster.nodes[1].add_job(job(work=100.0, demand=10.0))
        cluster.nodes[1].add_job(job(work=100.0, demand=10.0))
        # node 0 (1 job, thrashing) vs node 1 (2 jobs, healthy)
        target = policy.select_node(newcomer)
        assert target.node_id == 0


class TestMemoryBasedPolicy:
    def test_prefers_most_idle_memory(self):
        cluster = tiny_cluster(num_nodes=3, memory_mb=100.0)
        policy = MemoryBasedPolicy(cluster)
        cluster.nodes[0].add_job(job(work=100.0, demand=80.0))
        cluster.nodes[1].add_job(job(work=100.0, demand=40.0))
        newcomer = job(home=0, work=10.0, demand=10.0)
        target = policy.select_node(newcomer)
        assert target.node_id == 2  # fully idle

    def test_migrates_hog_away_from_thrashing_node(self):
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0)
        policy = MemoryBasedPolicy(cluster)
        hog = job(home=0, work=200.0, demand=90.0)
        small = job(home=0, work=200.0, demand=60.0)
        cluster.nodes[0].add_job(hog)
        cluster.nodes[0].add_job(small)
        assert cluster.nodes[0].thrashing
        cluster.sim.run(until=150.0)  # transfer takes ~75s at 10 Mbps
        assert policy.stats.migrations >= 1
        # the most memory-intensive job moved to the idle node
        assert hog.node_id == 1 or small.node_id == 1


class TestGLoadSharing:
    def test_home_preferred_when_healthy(self):
        cluster = tiny_cluster()
        policy = GLoadSharing(cluster)
        a = job(home=3, work=10.0)
        assert policy.select_node(a).node_id == 3

    def test_remote_submission_when_home_full(self):
        cluster = tiny_cluster(num_nodes=2, cpu_threshold=1)
        policy = GLoadSharing(cluster)
        first = job(home=0, work=50.0)
        second = job(home=0, work=50.0)
        drive(policy, [first, second])
        cluster.sim.run(until=5.0)
        assert first.node_id == 0
        assert second.node_id == 1
        assert policy.stats.remote_submissions == 1
        # remote submission cost charged to t_mig
        assert second.acct.migration_s == pytest.approx(
            cluster.config.remote_submission_cost_s)

    def test_avoids_thrashing_home(self):
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0)
        policy = GLoadSharing(cluster)
        cluster.nodes[0].add_job(job(work=500.0, demand=150.0))
        assert cluster.nodes[0].thrashing
        newcomer = job(home=0, work=10.0, demand=10.0)
        target = policy.select_node(newcomer)
        assert target.node_id == 1

    def test_queues_when_nothing_qualifies(self):
        cluster = tiny_cluster(num_nodes=2, cpu_threshold=1)
        policy = GLoadSharing(cluster)
        jobs = [job(home=i % 2, work=20.0) for i in range(3)]
        drive(policy, jobs)
        cluster.sim.run(until=1.0)
        assert len(policy.pending_jobs) == 1
        cluster.sim.run()
        assert all(j.finished for j in jobs)

    def test_migration_frees_thrashing_node(self):
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0)
        policy = GLoadSharing(cluster)
        hog = job(home=0, work=300.0, demand=90.0)
        small = job(home=0, work=300.0, demand=60.0)
        cluster.nodes[0].add_job(hog)
        cluster.nodes[0].add_job(small)
        cluster.sim.run(until=150.0)
        assert policy.stats.migrations >= 1
        assert not cluster.nodes[0].thrashing
        assert hog.migrations + small.migrations >= 1

    def test_migration_cost_charged(self):
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0)
        policy = GLoadSharing(cluster)
        hog = job(home=0, work=300.0, demand=90.0)
        small = job(home=0, work=300.0, demand=60.0)
        cluster.nodes[0].add_job(hog)
        cluster.nodes[0].add_job(small)
        cluster.sim.run(until=150.0)  # transfer takes ~75s at 10 Mbps
        moved = hog if hog.migrations else small
        assert moved.acct.migration_s > 0.1  # r plus wire time

    def test_blocking_event_recorded_when_no_destination(self):
        # Two nodes; the non-thrashing one has no free slot.
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0,
                               cpu_threshold=2)
        policy = GLoadSharing(cluster)
        cluster.nodes[0].add_job(job(work=300.0, demand=90.0))
        cluster.nodes[0].add_job(job(work=300.0, demand=60.0))
        cluster.nodes[1].add_job(job(work=300.0, demand=10.0))
        cluster.nodes[1].add_job(job(work=300.0, demand=10.0))
        cluster.sim.run(until=30.0)
        assert policy.stats.blocking_events >= 1
        assert policy.stats.migrations == 0


class TestPendingFairness:
    def test_fifo_head_not_overtaken(self):
        cluster = tiny_cluster(num_nodes=1, cpu_threshold=1)
        policy = GLoadSharing(cluster)
        jobs = [job(home=0, work=10.0, submit=float(i)) for i in range(4)]
        drive(policy, jobs)
        cluster.sim.run()
        finishes = [j.finish_time for j in jobs]
        assert finishes == sorted(finishes)
