"""Unit tests for workload characterization and the bar chart."""

import pytest

from repro.metrics.report import render_bar_chart
from repro.workload.generator import build_trace
from repro.workload.programs import WorkloadGroup
from repro.workload.stats import characterize_demands, characterize_trace


class TestCharacterization:
    def test_basic_stats(self):
        char = characterize_demands([10.0, 20.0, 30.0], 100.0)
        assert char.num_jobs == 3
        assert char.mean_demand_mb == pytest.approx(20.0)
        assert char.max_demand_mb == 30.0
        assert char.large_fraction == 0.0

    def test_large_fraction(self):
        char = characterize_demands([10.0, 60.0, 90.0], 100.0)
        assert char.large_fraction == pytest.approx(2.0 / 3.0)

    def test_equally_sized_detection(self):
        """§5's unsuccessful condition: near-identical demands."""
        assert characterize_demands([50.0] * 20, 100.0).equally_sized
        assert not characterize_demands([10.0, 50.0, 190.0],
                                        100.0).equally_sized

    def test_validation(self):
        with pytest.raises(ValueError):
            characterize_demands([], 100.0)
        with pytest.raises(ValueError):
            characterize_demands([1.0], 0.0)

    def test_paper_traces_are_not_equally_sized(self):
        """§5: 'the memory demands of jobs in a workload are rarely
        equally sized' — both of our reconstructed groups satisfy the
        paper's viability condition."""
        for group, user_mem in ((WorkloadGroup.SPEC, 376.0),
                                (WorkloadGroup.APP, 120.0)):
            trace = build_trace(group, 3)
            char = characterize_trace(trace, user_mem)
            assert not char.equally_sized
            assert 0.0 < char.large_fraction < 0.5

    def test_summary_renders(self):
        char = characterize_demands([10.0, 50.0], 100.0)
        text = char.summary()
        assert "2 jobs" in text
        assert "CV" in text


class TestBarChart:
    def test_renders_bars(self):
        rows = [{"trace": "T-1", "G": 100.0, "V": 70.0},
                {"trace": "T-2", "G": 200.0, "V": 150.0}]
        chart = render_bar_chart(rows, "trace", ["G", "V"],
                                 width=20, title="demo")
        assert "demo" in chart
        assert chart.count("|") == 4
        # the largest value gets the full width
        assert "#" * 20 in chart

    def test_zero_values_safe(self):
        rows = [{"trace": "T", "G": 0.0, "V": 0.0}]
        chart = render_bar_chart(rows, "trace", ["G", "V"])
        assert "T" in chart
